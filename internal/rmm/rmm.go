package rmm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// Persistent header word offsets (relative to the allocator header). The
// chunk directory follows the fixed words: entry i occupies two words
// (bitmap address, blocks address) at hdrDir + 2*i.
const (
	hdrBlockW    = 0
	hdrChunkCap  = pmem.WordSize
	hdrMaxChunks = 2 * pmem.WordSize
	hdrNChunks   = 3 * pmem.WordSize
	hdrDir       = 4 * pmem.WordSize
	hdrFixed     = 4
)

// refillBlocks is how many free blocks a handle pulls off a chunk's shared
// free-stack in one CAS; flushBlocks is how many locally buffered frees a
// handle accumulates before splicing them back with one CAS per chunk.
const (
	refillBlocks = 16
	flushBlocks  = 16
)

// sites names the allocator's registered pwb code lines.
type sites struct {
	bit   pmem.Site // bitmap bit set (Alloc) / clear (Free)
	dir   pmem.Site // chunk-directory entry of a grown chunk
	count pmem.Site // chunk-count publish that commits a grow
}

// chunk is the volatile view of one contiguous block arena: its durable
// addresses plus the lock-free free-stack over its block indices. The
// stack is a Treiber list threaded through the next array — top packs a
// 32-bit ABA version with the 1-based index of the first free block, and
// next[i] holds the 1-based successor of block i (0 terminates). All
// stack state is volatile: a crash discards it and Attach/RecoverGC
// rebuild it from the durable bitmap, which is the only allocation truth.
type chunk struct {
	bitmap pmem.Addr // bitmapWords words, bit b = block b allocated
	blocks pmem.Addr // chunkCap * blockWords words
	top    atomic.Uint64
	free   atomic.Int64 // free-stack population (excludes handle caches)
	// dormant marks a chunk the shrink policy has retired: Alloc skips it
	// until demand reactivates it. The flag is volatile only — the durable
	// state of a dormant chunk is indistinguishable from an active one, so
	// recovery simply resurrects every chunk active.
	dormant atomic.Bool
	next    []atomic.Uint32
}

// packTop builds a top word from a version and a 1-based head index.
func packTop(ver uint64, head1 uint32) uint64 { return ver<<32 | uint64(head1) }

// pushChain splices the pre-linked chain head1..tail1 (1-based chunk-local
// indices, n blocks) onto the free-stack with one CAS. The chain's cells
// are exclusively owned by the caller until the CAS publishes them.
func (c *chunk) pushChain(head1, tail1 uint32, n int64) {
	for {
		old := c.top.Load()
		c.next[tail1-1].Store(uint32(old))
		if c.top.CompareAndSwap(old, packTop(old>>32+1, head1)) {
			c.free.Add(n)
			return
		}
	}
}

// popChain detaches up to max blocks from the free-stack with one CAS and
// writes their chunk-local indices into dst. The walk over next cells may
// observe stale links if the stack changes underneath it, but any push or
// pop bumps top's version, so the CAS only succeeds when the walked chain
// was stable. Returns the number of blocks taken (0 = stack empty) and
// the number of CAS attempts + links walked, for the O(1) diagnostics.
func (c *chunk) popChain(dst []int, max int) (n int, steps uint64) {
	for {
		old := c.top.Load()
		steps++
		head1 := uint32(old)
		if head1 == 0 {
			return 0, steps
		}
		cur := head1
		n = 1
		dst[0] = int(cur - 1)
		for n < max {
			nxt := c.next[cur-1].Load()
			steps++
			if nxt == 0 {
				break
			}
			cur = nxt
			dst[n] = int(cur - 1)
			n++
		}
		newHead := c.next[cur-1].Load()
		if c.top.CompareAndSwap(old, packTop(old>>32+1, newHead)) {
			c.free.Add(-int64(n))
			return n, steps
		}
	}
}

// Allocator manages fixed-size blocks carved out of a pool, in up to
// maxChunks chunks of chunkCap blocks each. The durable state is the
// header (geometry + chunk directory + chunk count) and one allocation
// bitmap per chunk; everything else — the per-chunk free-stacks, the
// handle caches, the shrink policy's dormancy flags — is volatile and
// rebuilt from the bitmaps on Attach or from the reachable set in
// RecoverGC.
type Allocator struct {
	pool        *pmem.Pool
	header      pmem.Addr
	blockWords  int
	chunkCap    int
	maxChunks   int
	bitmapWords int // per chunk
	// stride is the block size in bytes; capShift/strideShift are the
	// log2 of chunkCap/stride when those are powers of two (-1 otherwise),
	// so the per-operation index math strength-reduces to shifts and masks
	// in the common geometries instead of hardware divisions.
	stride      int
	capShift    int
	strideShift int
	chunks      []atomic.Pointer[chunk]
	// bases is the published address-resolution table: the arena base of
	// every chunk in chunk order plus, when the chunk span is a power of
	// two, a span-granular bucket index mapping an address directly to its
	// owning chunk (at most two candidates per bucket, since disjoint
	// span-length arenas can overlap a span-length bucket at most twice).
	// Free resolves a block address through it in O(1) instead of scanning
	// the base list — the same trick page-table-style allocators use.
	// Republished as one pointer swap on each grow so readers always see a
	// consistent table.
	bases atomic.Pointer[baseTable]
	nChunks     atomic.Int32
	growMu      sync.Mutex
	rotor       atomic.Int64 // distributes handles across chunks
	shrinkPct   atomic.Int64 // auto-retire threshold; 0 disables
	s           sites

	// Statistics counters; see Stats.
	allocs, freesN, grows, shrinks, reactivates atomic.Uint64
	refills, flushes, stackSteps                atomic.Uint64
	leaksReclaimed, marksRestored               atomic.Uint64
}

// New creates a fixed-size allocator of nBlocks blocks of blockWords words
// each and records its header in rootSlot. It is NewGrowable with a single
// chunk — the arena can never grow.
func New(pool *pmem.Pool, blockWords, nBlocks, rootSlot int) *Allocator {
	return NewGrowable(pool, blockWords, nBlocks, 1, rootSlot)
}

// NewGrowable creates a growable allocator: one chunk of chunkBlocks
// blocks of blockWords words each is carved out immediately, and Alloc
// grows the arena chunk by chunk, up to maxChunks, when every active chunk
// is exhausted. The header (geometry, chunk directory, chunk count) is
// persisted and recorded in rootSlot so Attach can rebuild the allocator
// after a crash. The slot is validated before anything is built.
func NewGrowable(pool *pmem.Pool, blockWords, chunkBlocks, maxChunks, rootSlot int) *Allocator {
	root, err := pool.RootSlotChecked(rootSlot)
	if err != nil {
		panic("rmm: " + err.Error())
	}
	return NewGrowableAt(pool, blockWords, chunkBlocks, maxChunks, root)
}

// NewGrowableAt is NewGrowable with the header address recorded in an
// arbitrary durable word instead of a root slot. Services that run more
// allocators than the pool has root slots (one per kvstore shard) point
// their directory entries here; at must already be allocated and is
// persisted with the bootstrap's NoSite discipline.
func NewGrowableAt(pool *pmem.Pool, blockWords, chunkBlocks, maxChunks int, at pmem.Addr) *Allocator {
	if blockWords <= 0 || chunkBlocks <= 0 || maxChunks <= 0 {
		panic("rmm: invalid geometry")
	}
	if !pool.ValidWords(at, 1) {
		panic("rmm: header slot outside pool")
	}
	boot := pool.NewThread(0)
	a := &Allocator{
		pool: pool, blockWords: blockWords, chunkCap: chunkBlocks,
		maxChunks: maxChunks, bitmapWords: (chunkBlocks + 63) / 64,
		chunks: make([]atomic.Pointer[chunk], maxChunks),
		s:      registerSites(pool),
	}
	a.setGeometry()
	header := boot.AllocWords(hdrFixed + 2*maxChunks)
	a.header = header
	boot.Store(header+hdrBlockW, uint64(blockWords))
	boot.Store(header+hdrChunkCap, uint64(chunkBlocks))
	boot.Store(header+hdrMaxChunks, uint64(maxChunks))
	boot.Store(header+hdrNChunks, 0)
	boot.PWBRange(pmem.NoSite, header, hdrFixed)
	boot.PFence()
	boot.Store(at, uint64(header))
	boot.PWB(pmem.NoSite, at)
	boot.PSync()
	if !a.grow(boot, true) {
		panic("rmm: pool too small for the first chunk")
	}
	return a
}

// registerSites registers (idempotently) the allocator's pwb code lines.
func registerSites(pool *pmem.Pool) sites {
	return sites{
		bit:   pool.RegisterSite("rmm/pwb-bitmap"),
		dir:   pool.RegisterSite("rmm/pwb-chunk-dir"),
		count: pool.RegisterSite("rmm/pwb-chunk-count"),
	}
}

// Attach reconstructs an Allocator from the header in rootSlot after pool
// recovery, rebuilding each chunk's volatile free-stack from its durable
// allocation bitmap. Blocks leaked by the crash (bit set, unreachable)
// stay allocated until RecoverGC reclaims them.
func Attach(pool *pmem.Pool, rootSlot int) (*Allocator, error) {
	root, err := pool.RootSlotChecked(rootSlot)
	if err != nil {
		return nil, fmt.Errorf("rmm: %w", err)
	}
	return AttachAt(pool.NewThread(0), root)
}

// AttachAt is Attach with the header address read from an arbitrary
// durable word (a shard-directory entry) instead of a root slot, using
// the caller's thread context — several AttachAt calls with distinct
// contexts may run concurrently (the kvstore recovers one allocator per
// shard across the recovery engine's workers).
func AttachAt(boot *pmem.ThreadCtx, at pmem.Addr) (*Allocator, error) {
	pool := boot.Pool()
	a, err := attachHeader(pool, boot, at)
	if err != nil {
		return nil, err
	}
	n := int(a.nChunks.Load())
	for ci := 0; ci < n; ci++ {
		c := a.chunkAt(ci)
		sl := newSplicer(a, ci)
		for wi := 0; wi < a.bitmapWords; wi++ {
			sl.word(wi, boot.Load(c.bitmap+pmem.Addr(wi*pmem.WordSize)))
		}
		sl.commit()
	}
	return a, nil
}

// attachHeader rebuilds the allocator struct and chunk directory (but not
// the free-stacks) from the persistent header recorded at the durable
// word at. Header address and fields are validated before use, so a stale
// or garbage word yields a descriptive error rather than a panic.
func attachHeader(pool *pmem.Pool, boot *pmem.ThreadCtx, at pmem.Addr) (*Allocator, error) {
	if !pool.ValidWords(at, 1) {
		return nil, fmt.Errorf("rmm: header slot %#x outside pool", uint64(at))
	}
	header := pmem.Addr(boot.Load(at))
	if header == pmem.Null {
		return nil, fmt.Errorf("rmm: slot %#x holds no allocator", uint64(at))
	}
	if !pool.ValidWords(header, hdrFixed) {
		return nil, fmt.Errorf("rmm: slot %#x holds %#x, not a header address",
			uint64(at), uint64(header))
	}
	a := &Allocator{
		pool:       pool,
		header:     header,
		blockWords: int(boot.Load(header + hdrBlockW)),
		chunkCap:   int(boot.Load(header + hdrChunkCap)),
		maxChunks:  int(boot.Load(header + hdrMaxChunks)),
		s:          registerSites(pool),
	}
	n := int(boot.Load(header + hdrNChunks))
	if a.blockWords <= 0 || a.chunkCap <= 0 || a.maxChunks <= 0 || n <= 0 || n > a.maxChunks ||
		!pool.ValidWords(header, hdrFixed+2*a.maxChunks) {
		return nil, fmt.Errorf("rmm: corrupt header at %#x", uint64(header))
	}
	a.bitmapWords = (a.chunkCap + 63) / 64
	a.setGeometry()
	a.chunks = make([]atomic.Pointer[chunk], a.maxChunks)
	for ci := 0; ci < n; ci++ {
		entry := header + hdrDir + pmem.Addr(2*ci*pmem.WordSize)
		bm := pmem.Addr(boot.Load(entry))
		bl := pmem.Addr(boot.Load(entry + pmem.WordSize))
		if !pool.ValidWords(bm, a.bitmapWords) || !pool.ValidWords(bl, a.chunkCap*a.blockWords) {
			return nil, fmt.Errorf("rmm: corrupt chunk directory entry %d", ci)
		}
		a.chunks[ci].Store(&chunk{
			bitmap: bm, blocks: bl,
			next: make([]atomic.Uint32, a.chunkCap),
		})
	}
	a.publishBases(n)
	a.nChunks.Store(int32(n))
	return a, nil
}

// chunkAt returns chunk ci; ci must be below the published count.
func (a *Allocator) chunkAt(ci int) *chunk { return a.chunks[ci].Load() }

// setGeometry derives the strength-reduction fields from the geometry.
func (a *Allocator) setGeometry() {
	a.stride = a.blockWords * pmem.WordSize
	a.capShift, a.strideShift = shiftFor(a.chunkCap), shiftFor(a.stride)
}

// shiftFor returns log2(n) when n is a power of two, else -1.
func shiftFor(n int) int {
	if n > 0 && n&(n-1) == 0 {
		return bits.TrailingZeros(uint(n))
	}
	return -1
}

// locate resolves global block index g to its chunk and chunk-local index.
func (a *Allocator) locate(g int) (*chunk, int) {
	if a.capShift >= 0 {
		return a.chunks[g>>uint(a.capShift)].Load(), g & (a.chunkCap - 1)
	}
	return a.chunks[g/a.chunkCap].Load(), g % a.chunkCap
}

// baseTable is the snapshot findBlock resolves addresses through. bases
// holds every chunk's arena base in chunk order. When the chunk span
// (chunkCap*stride) is a power of two, look is a dense bucket index over
// [lo, hi): bucket b covers addresses [lo+b<<shift, lo+(b+1)<<shift), and
// each bucket lists the (at most two) chunks whose arena intersects it,
// nil-chunk padded. Bucket entries carry the candidate's base and chunk
// pointer inline, so the hot lookup is one table load plus one bucket
// load — no hop through the base or chunk slices. A nil look means
// irregular geometry; findBlock falls back to scanning bases.
type baseTable struct {
	bases []pmem.Addr
	chs   []*chunk // resolved chunk pointers, same order as bases
	lo    pmem.Addr
	shift uint
	look  [][2]lookEntry
}

// lookEntry is one candidate chunk in a baseTable bucket. A nil ch ends
// the bucket's candidate list.
type lookEntry struct {
	base pmem.Addr
	ch   *chunk
	ci   int32
}

// findBlock locates the chunk owning a block address and the block's
// chunk index and chunk-local index. It reports false for addresses
// outside every chunk's arena or misaligned within one. With the bucket
// index published it costs one table load and at most two base compares,
// independent of the chunk count.
func (a *Allocator) findBlock(addr pmem.Addr) (*chunk, int, int, bool) {
	t := a.bases.Load()
	span := pmem.Addr(a.chunkCap * a.stride)
	if t.look != nil {
		if addr < t.lo {
			return nil, 0, 0, false
		}
		b := uint64(addr-t.lo) >> t.shift
		if b >= uint64(len(t.look)) {
			return nil, 0, 0, false
		}
		// Indexing through a pointer: ranging the bucket by value would
		// copy all 48 bytes of it per call.
		bkt := &t.look[b]
		for i := range bkt {
			e := &bkt[i]
			if e.ch == nil {
				break
			}
			if addr-e.base < span {
				return a.resolve(e.ch, int(e.ci), int(addr-e.base))
			}
		}
		return nil, 0, 0, false
	}
	for ci, base := range t.bases {
		if addr >= base && addr-base < span {
			return a.resolve(t.chs[ci], ci, int(addr-base))
		}
	}
	return nil, 0, 0, false
}

// resolve finishes findBlock once the owning chunk is known: it rejects
// offsets that are misaligned within the block stride.
func (a *Allocator) resolve(ch *chunk, ci, off int) (*chunk, int, int, bool) {
	var idx int
	if a.strideShift >= 0 {
		if off&(a.stride-1) != 0 {
			return nil, 0, 0, false
		}
		idx = off >> uint(a.strideShift)
	} else {
		if off%a.stride != 0 {
			return nil, 0, 0, false
		}
		idx = off / a.stride
	}
	return ch, ci, idx, true
}

// publishBases rebuilds the address-resolution table from the first n
// chunks and publishes it in one pointer swap. Callers are single-threaded
// constructors/recovery or hold growMu. The bucket index is built only for
// power-of-two spans (shift-indexable); other geometries publish just the
// base list and findBlock scans it.
func (a *Allocator) publishBases(n int) {
	t := &baseTable{bases: make([]pmem.Addr, n), chs: make([]*chunk, n)}
	for ci := 0; ci < n; ci++ {
		t.chs[ci] = a.chunks[ci].Load()
		t.bases[ci] = t.chs[ci].blocks
	}
	span := a.chunkCap * a.stride
	if spanShift := shiftFor(span); spanShift >= 0 && n > 0 && n <= 1<<15 {
		lo, hi := t.bases[0], t.bases[0]
		for _, b := range t.bases {
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		t.lo, t.shift = lo, uint(spanShift)
		t.look = make([][2]lookEntry, int(hi-lo+pmem.Addr(span)-1)>>spanShift+1)
		for ci, base := range t.bases {
			e := lookEntry{base: base, ch: t.chs[ci], ci: int32(ci)}
			b0 := int(base-lo) >> spanShift
			b1 := int(base-lo+pmem.Addr(span)-1) >> spanShift
			for _, b := range [2]int{b0, b1} {
				if t.look[b][0].ch == nil {
					t.look[b][0] = e
				} else if t.look[b][0].ci != e.ci {
					t.look[b][1] = e
				}
			}
		}
	}
	a.bases.Store(t)
}

// grow carves a new chunk out of the pool arena and publishes it. The
// persist order makes a crash anywhere inside it harmless: the directory
// entry is flushed and fenced before the chunk count that makes it
// visible, so a torn grow leaves the durable count — and therefore every
// recovery — exactly as before the call. The arena words of an
// unpublished chunk are lost (the pool's bump pointer never rewinds), a
// bounded leak of at most one chunk per crash, mirroring the block-leak
// model. boot marks the constructor's first chunk, whose persists are
// bootstrap writes outside the sweep's site universe. Callers hold growMu
// (the constructor is single-threaded). Returns false when the chunk
// budget or the pool arena is exhausted.
func (a *Allocator) grow(ctx *pmem.ThreadCtx, boot bool) bool {
	n := int(a.nChunks.Load())
	if n >= a.maxChunks {
		return false
	}
	bmLines := (a.bitmapWords + pmem.LineWords - 1) / pmem.LineWords
	blkLines := (a.chunkCap*a.blockWords + pmem.LineWords - 1) / pmem.LineWords
	bm, ok := ctx.TryAllocLines(bmLines)
	if !ok {
		return false
	}
	bl, ok := ctx.TryAllocLines(blkLines)
	if !ok {
		return false // the bitmap words leak; the arena is exhausted anyway
	}
	siteDir, siteCount := a.s.dir, a.s.count
	if boot {
		siteDir, siteCount = pmem.NoSite, pmem.NoSite
	}
	// A fresh chunk's bitmap is durably zero already (arena words start
	// zero and were never written), so only the directory needs persisting.
	entry := a.header + hdrDir + pmem.Addr(2*n*pmem.WordSize)
	ctx.Store(entry, uint64(bm))
	ctx.Store(entry+pmem.WordSize, uint64(bl))
	ctx.PWBRange(siteDir, entry, 2)
	ctx.PFence()

	c := &chunk{bitmap: bm, blocks: bl, next: make([]atomic.Uint32, a.chunkCap)}
	for i := 0; i < a.chunkCap-1; i++ {
		c.next[i].Store(uint32(i + 2))
	}
	c.top.Store(packTop(0, 1))
	c.free.Store(int64(a.chunkCap))
	a.chunks[n].Store(c)
	a.publishBases(n + 1)

	ctx.Store(a.header+hdrNChunks, uint64(n+1))
	ctx.PWB(siteCount, a.header+hdrNChunks)
	ctx.PSync()
	a.nChunks.Store(int32(n + 1))
	a.grows.Add(1)
	return true
}

// BlockAddr returns the address of block i (global index, chunk-major).
func (a *Allocator) BlockAddr(i int) pmem.Addr {
	c, idx := a.locate(i)
	return c.blocks + pmem.Addr(idx*a.stride)
}

// blockIndex is the inverse of BlockAddr: it maps a block address to its
// global index by locating the owning chunk.
func (a *Allocator) blockIndex(addr pmem.Addr) (int, error) {
	if _, ci, idx, ok := a.findBlock(addr); ok {
		return ci*a.chunkCap + idx, nil
	}
	return 0, fmt.Errorf("rmm: %#x is not a block address", uint64(addr))
}

// Owns reports whether addr is a block address of this allocator.
func (a *Allocator) Owns(addr pmem.Addr) bool {
	_, _, _, ok := a.findBlock(addr)
	return ok
}

// bitWord locates the bitmap word and mask of global block index i.
func (a *Allocator) bitWord(i int) (addr pmem.Addr, mask uint64) {
	c, idx := a.locate(i)
	return c.bitmap + pmem.Addr(idx>>6*pmem.WordSize), 1 << uint(idx&63)
}

// Handle is the per-thread face of the allocator. It buffers both sides
// of churn: Alloc refills a private cache of free blocks with one shared
// CAS per refillBlocks pops, and Free batches bit-cleared blocks locally,
// splicing them back with one shared CAS per chunk per flushBlocks frees.
// A handle is single-goroutine, like its ThreadCtx, and must be discarded
// (not reused) across a crash or a RecoverGC.
type Handle struct {
	a   *Allocator
	ctx *pmem.ThreadCtx
	// cache holds refilled free blocks (global indices), consumed from
	// cachePos; frees holds bit-cleared blocks awaiting their flush, and
	// doubles as the first allocation source so a freed block is reused
	// while its lines are hot.
	cache    []int
	cachePos int
	frees    []int
	pref     int
	// nAllocs/nFrees batch the operation counters: the shared stats
	// atomics are touched once per statsBatch operations, so the hot path
	// pays a plain increment. Stats may therefore lag the truth by up to
	// statsBatch-1 operations per live handle.
	nAllocs, nFrees uint32
}

// statsBatch is the handle-local operation-counter flush period.
const statsBatch = 32

// Handle creates the per-thread handle for ctx.
func (a *Allocator) Handle(ctx *pmem.ThreadCtx) *Handle {
	return &Handle{
		a: a, ctx: ctx,
		cache: make([]int, 0, refillBlocks),
		pref:  int(a.rotor.Add(1) - 1),
	}
}

// takeLocal pops a block from the handle's private buffers: most recently
// freed first, then the refill cache.
func (h *Handle) takeLocal() (int, bool) {
	if n := len(h.frees); n > 0 {
		g := h.frees[n-1]
		h.frees = h.frees[:n-1]
		return g, true
	}
	if h.cachePos < len(h.cache) {
		g := h.cache[h.cachePos]
		h.cachePos++
		return g, true
	}
	return 0, false
}

// refill repopulates the handle's cache from the shared free-stacks:
// chunks are scanned round-robin from the handle's preferred chunk, and
// the first non-empty stack donates up to refillBlocks blocks in one CAS.
// When every active chunk is empty the allocator expands (reactivating a
// dormant chunk, then growing) and the scan retries once.
func (h *Handle) refill() (int, bool) {
	a := h.a
	h.cache = h.cache[:cap(h.cache)]
	h.cachePos = len(h.cache) // stays "empty" if every pop below fails
	for attempt := 0; attempt < 2; attempt++ {
		n := int(a.nChunks.Load())
		for j := 0; j < n; j++ {
			c := a.chunkAt((h.pref + j) % n)
			if c.dormant.Load() {
				continue
			}
			ci := (h.pref + j) % n
			got, steps := c.popChain(h.cache, refillBlocks)
			a.stackSteps.Add(steps)
			if got > 0 {
				for i := 0; i < got; i++ {
					h.cache[i] += ci * a.chunkCap
				}
				h.cache = h.cache[:got]
				h.cachePos = 1
				a.refills.Add(1)
				return h.cache[0], true
			}
		}
		if !a.expand(h.ctx) {
			break
		}
	}
	return 0, false
}

// expand makes more blocks allocatable when every active free-stack is
// empty: it reactivates the lowest dormant chunk if one exists, else grows
// a fresh chunk. The grow lock serializes expanders; a second expander
// re-checks the stacks under the lock so racing exhaustion cannot grow
// twice for one shortage.
func (a *Allocator) expand(ctx *pmem.ThreadCtx) bool {
	a.growMu.Lock()
	defer a.growMu.Unlock()
	n := int(a.nChunks.Load())
	for ci := 0; ci < n; ci++ {
		c := a.chunkAt(ci)
		if c.dormant.Load() {
			c.dormant.Store(false)
			a.reactivates.Add(1)
			return true
		}
		if !c.dormant.Load() && c.free.Load() > 0 {
			return true // a concurrent free or expander already resolved it
		}
	}
	return a.grow(ctx, false)
}

// Alloc claims a free block, zeroes it, and returns its address after the
// block's bitmap bit is durable — so a crash can never hand the block out
// twice. The hot path is O(1): pop a block from the handle's private
// buffers (amortized one shared CAS per refillBlocks allocations), then
// one bitmap CAS + pwb + psync for the durable claim. Blocks sitting in a
// handle's buffers keep their bits clear, so a crash returns them to the
// free pool rather than leaking them. Alloc returns Null only when every
// chunk is empty and the arena can no longer grow; concurrently buffered
// frees of other handles may make a Null transient.
func (h *Handle) Alloc() pmem.Addr {
	a := h.a
	c := h.ctx
	g, ok := h.takeLocal()
	if !ok {
		if g, ok = h.refill(); !ok {
			return pmem.Null
		}
	}
	ch, idx := a.locate(g)
	w := ch.bitmap + pmem.Addr(idx>>6*pmem.WordSize)
	mask := uint64(1) << uint(idx&63)
	for {
		v := c.Load(w)
		if c.CAS(w, v, v|mask) {
			break
		}
	}
	c.PWB(a.s.bit, w)
	c.PSync()
	b := ch.blocks + pmem.Addr(idx*a.stride)
	for off := 0; off < a.blockWords; off++ {
		c.Store(b+pmem.Addr(off*pmem.WordSize), 0)
	}
	if h.nAllocs++; h.nAllocs >= statsBatch {
		a.allocs.Add(uint64(h.nAllocs))
		h.nAllocs = 0
	}
	return b
}

// Free releases a block: the bitmap bit-clear is persisted immediately
// (a lost write-back leaks the block until the next RecoverGC, but can
// never double-allocate it), then the block joins the handle's local free
// buffer for reuse; full buffers flush to the shared free-stacks in one
// CAS per chunk. Freeing an address the allocator does not own, or a
// block that is already free, returns an error.
func (h *Handle) Free(addr pmem.Addr) error {
	a := h.a
	c := h.ctx
	ch, ci, idx, ok := a.findBlock(addr)
	if !ok {
		return fmt.Errorf("rmm: %#x is not a block address", uint64(addr))
	}
	w := ch.bitmap + pmem.Addr(idx>>6*pmem.WordSize)
	mask := uint64(1) << uint(idx&63)
	g := ci*a.chunkCap + idx
	if a.capShift >= 0 {
		g = ci<<uint(a.capShift) | idx
	}
	for {
		v := c.Load(w)
		if v&mask == 0 {
			return fmt.Errorf("rmm: double free of block %d", g)
		}
		if c.CAS(w, v, v&^mask) {
			break
		}
	}
	c.PWB(a.s.bit, w)
	c.PSync()
	h.frees = append(h.frees, g)
	if h.nFrees++; h.nFrees >= statsBatch {
		a.freesN.Add(uint64(h.nFrees))
		h.nFrees = 0
	}
	if len(h.frees) >= flushBlocks {
		h.Flush()
	}
	return nil
}

// Flush splices the handle's buffered frees back onto their chunks'
// shared free-stacks (one CAS per distinct chunk) and applies the shrink
// policy. Free calls it automatically at the flush threshold; call it
// directly before idling a thread so its buffered blocks become
// allocatable to others.
func (h *Handle) Flush() {
	if len(h.frees) == 0 {
		return
	}
	a := h.a
	type chain struct {
		ci           int
		head1, tail1 uint32
		n            int64
	}
	var chains [flushBlocks]chain
	nc := 0
	for _, g := range h.frees {
		ci, idx1 := g/a.chunkCap, uint32(g%a.chunkCap+1)
		found := -1
		for i := 0; i < nc; i++ {
			if chains[i].ci == ci {
				found = i
				break
			}
		}
		if found < 0 {
			chains[nc] = chain{ci: ci, head1: idx1, tail1: idx1, n: 1}
			nc++
			continue
		}
		c := a.chunkAt(ci)
		c.next[chains[found].tail1-1].Store(idx1)
		chains[found].tail1 = idx1
		chains[found].n++
	}
	for i := 0; i < nc; i++ {
		a.chunkAt(chains[i].ci).pushChain(chains[i].head1, chains[i].tail1, chains[i].n)
	}
	h.frees = h.frees[:0]
	a.flushes.Add(1)
	a.maybeShrink()
}

// SetShrinkPolicy sets the auto-shrink threshold: after a free flush, if
// at least minFreePct percent of the active capacity is on the shared
// free-stacks and some chunk is entirely free, that chunk is retired
// (made dormant) so allocation concentrates in fewer chunks. 0 disables
// auto-shrink; Shrink remains available for explicit retirement.
// Dormancy is volatile: a crash resurrects every chunk active and the
// policy re-applies under the post-recovery load.
func (a *Allocator) SetShrinkPolicy(minFreePct int) { a.shrinkPct.Store(int64(minFreePct)) }

// maybeShrink applies the auto-shrink policy after a flush.
func (a *Allocator) maybeShrink() {
	pct := a.shrinkPct.Load()
	if pct <= 0 {
		return
	}
	var free, capacity int64
	n := int(a.nChunks.Load())
	active := 0
	for ci := 0; ci < n; ci++ {
		c := a.chunkAt(ci)
		if c.dormant.Load() {
			continue
		}
		active++
		free += c.free.Load()
		capacity += int64(a.chunkCap)
	}
	if active >= 2 && free*100 >= capacity*pct {
		a.Shrink()
	}
}

// Shrink retires one entirely free chunk (the highest-indexed one) by
// marking it dormant, so Alloc stops drawing from it; a later exhaustion
// reactivates it before any grow. At least one chunk always stays active.
// The durable state is untouched — a dormant chunk's bitmap is all-free
// and recovery resurrects it active. Returns whether a chunk was retired.
func (a *Allocator) Shrink() bool {
	a.growMu.Lock()
	defer a.growMu.Unlock()
	n := int(a.nChunks.Load())
	active := 0
	for ci := 0; ci < n; ci++ {
		if !a.chunkAt(ci).dormant.Load() {
			active++
		}
	}
	if active < 2 {
		return false
	}
	for ci := n - 1; ci >= 0; ci-- {
		c := a.chunkAt(ci)
		if !c.dormant.Load() && c.free.Load() == int64(a.chunkCap) {
			c.dormant.Store(true)
			a.shrinks.Add(1)
			return true
		}
	}
	return false
}

// InUse counts allocated blocks (diagnostic): the population of the
// durable bitmaps, which includes blocks leaked by crashes until
// RecoverGC reclaims them but excludes free blocks buffered in handles.
func (a *Allocator) InUse(ctx *pmem.ThreadCtx) int {
	n := 0
	nc := int(a.nChunks.Load())
	for ci := 0; ci < nc; ci++ {
		c := a.chunkAt(ci)
		for wi := 0; wi < a.bitmapWords; wi++ {
			v := ctx.Load(c.bitmap + pmem.Addr(wi*pmem.WordSize))
			if rem := a.chunkCap - wi*64; rem < 64 {
				v &= 1<<uint(rem) - 1
			}
			n += bits.OnesCount64(v)
		}
	}
	return n
}

// TotalBlocks reports the current capacity in blocks across all chunks,
// dormant included.
func (a *Allocator) TotalBlocks() int { return int(a.nChunks.Load()) * a.chunkCap }

// splicer assembles one chunk's free-stack deterministically from
// per-word sublists. Each bitmap word contributes its free blocks as an
// ascending pre-linked sublist (word is idempotent and touches only that
// word's next cells, so independent words may be built by different
// recovery workers); commit then splices the sublists in word order and
// publishes the stack head, free count and active flag. The result is a
// pure function of the bitmap contents — identical no matter how many
// workers built the sublists.
type splicer struct {
	a     *Allocator
	c     *chunk
	heads []uint32
	tails []uint32
	cnts  []int64
}

// newSplicer prepares a splicer for chunk ci.
func newSplicer(a *Allocator, ci int) *splicer {
	return &splicer{
		a: a, c: a.chunkAt(ci),
		heads: make([]uint32, a.bitmapWords),
		tails: make([]uint32, a.bitmapWords),
		cnts:  make([]int64, a.bitmapWords),
	}
}

// word builds word wi's sublist from its allocated-bits value.
func (s *splicer) word(wi int, allocBits uint64) {
	span := s.a.chunkCap - wi*64
	if span > 64 {
		span = 64
	}
	mask := ^uint64(0)
	if span < 64 {
		mask = 1<<uint(span) - 1
	}
	free := ^allocBits & mask
	var head, prev uint32
	var n int64
	for free != 0 {
		idx1 := uint32(wi*64+bits.TrailingZeros64(free)) + 1
		if head == 0 {
			head = idx1
		} else {
			s.c.next[prev-1].Store(idx1)
		}
		prev = idx1
		n++
		free &= free - 1
	}
	s.heads[wi], s.tails[wi], s.cnts[wi] = head, prev, n
}

// commit links the sublists in word order and publishes the stack.
func (s *splicer) commit() {
	var first, last uint32
	var total int64
	for wi := range s.heads {
		if s.heads[wi] == 0 {
			continue
		}
		if first == 0 {
			first = s.heads[wi]
		} else {
			s.c.next[last-1].Store(s.heads[wi])
		}
		last = s.tails[wi]
		total += s.cnts[wi]
	}
	if last != 0 {
		s.c.next[last-1].Store(0)
	}
	s.c.top.Store(packTop(s.c.top.Load()>>32+1, first))
	s.c.free.Store(total)
	s.c.dormant.Store(false)
}

// CheckInvariants audits the volatile/durable split on a quiescent
// allocator: each chunk's free-stack must be acyclic, hold exactly the
// population its free counter claims, and list only blocks whose durable
// bit is clear. (Blocks buffered in handles are bit-clear but on no
// stack, so the stack population is a lower bound on the bitmap's free
// count.)
func (a *Allocator) CheckInvariants(ctx *pmem.ThreadCtx) error {
	nc := int(a.nChunks.Load())
	for ci := 0; ci < nc; ci++ {
		c := a.chunkAt(ci)
		var walked int64
		bitClear := 0
		for wi := 0; wi < a.bitmapWords; wi++ {
			v := ctx.Load(c.bitmap + pmem.Addr(wi*pmem.WordSize))
			span := a.chunkCap - wi*64
			if span > 64 {
				span = 64
			}
			bitClear += span - bits.OnesCount64(v&(^uint64(0)>>uint(64-span)))
		}
		for idx1 := uint32(c.top.Load()); idx1 != 0; idx1 = c.next[idx1-1].Load() {
			if walked++; walked > int64(a.chunkCap) {
				return fmt.Errorf("rmm: chunk %d free-stack cycles or overruns", ci)
			}
			g := ci*a.chunkCap + int(idx1-1)
			if w, mask := a.bitWord(g); ctx.Load(w)&mask != 0 {
				return fmt.Errorf("rmm: chunk %d lists allocated block %d as free", ci, g)
			}
		}
		if f := c.free.Load(); f != walked {
			return fmt.Errorf("rmm: chunk %d free counter %d != stack population %d", ci, f, walked)
		}
		if walked > int64(bitClear) {
			return fmt.Errorf("rmm: chunk %d stack population %d exceeds %d bit-clear blocks",
				ci, walked, bitClear)
		}
	}
	return nil
}
