// Package rmm is a lock-free recoverable memory manager for the simulated
// NVMM pool — the future-work direction Section 7 of Attiya et al. (PPoPP
// 2022) closes with ("implementing lock-free recoverable memory managers",
// citing Makalu). The data-structure packages in this repository use a
// bump allocator and rely on a garbage collector, exactly like the paper's
// implementations; this package provides the missing piece for long-running
// deployments: a fixed-size-class block allocator whose metadata survives
// crashes.
//
// Design, following Makalu's offline-recovery philosophy:
//
//   - a persistent bitmap records which blocks are allocated; set/clear
//     bits are persisted with pwb+psync around the linearizing CAS;
//   - threads reserve whole chunks of blocks from a shared cursor and then
//     allocate privately within them, so the common path touches no shared
//     cache line;
//   - a crash can leak blocks (bit set, block unreachable: a free whose
//     bit-clear write-back was lost, or an allocation that never got
//     linked into the user structure) but can never double-allocate,
//     because the bit's write-back is drained before Alloc returns;
//   - RecoverGC rebuilds the bitmap offline from the user's reachable
//     blocks after a crash, reclaiming every leak.
package rmm

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/recovery"
)

// Header word offsets.
const (
	hdrBitmap  = 0
	hdrBlocks  = pmem.WordSize
	hdrBlockW  = 2 * pmem.WordSize
	hdrNBlocks = 3 * pmem.WordSize
	hdrLen     = 4
)

// chunkBlocks is how many blocks a thread reserves from the shared cursor
// at a time.
const chunkBlocks = 32

type sites struct {
	bit pmem.Site
}

// Allocator manages nBlocks fixed-size blocks carved out of a pool.
type Allocator struct {
	pool       *pmem.Pool
	bitmap     pmem.Addr // nBlocks bits, word-packed
	blocksBase pmem.Addr
	blockWords int
	nBlocks    int
	header     pmem.Addr
	cursor     atomic.Int64 // volatile chunk-reservation hint
	scanWords  atomic.Uint64 // diagnostic: bitmap words loaded by Alloc scans
	s          sites
}

// New creates an allocator of nBlocks blocks of blockWords words each and
// records its header in rootSlot.
func New(pool *pmem.Pool, blockWords, nBlocks, rootSlot int) *Allocator {
	if blockWords <= 0 || nBlocks <= 0 {
		panic("rmm: invalid geometry")
	}
	boot := pool.NewThread(0)
	bitmapWords := (nBlocks + 63) / 64
	bitmap := boot.AllocLines((bitmapWords + pmem.LineWords - 1) / pmem.LineWords)
	blocks := boot.AllocLines((nBlocks*blockWords + pmem.LineWords - 1) / pmem.LineWords)

	header := boot.AllocLocal(hdrLen)
	boot.Store(header+hdrBitmap, uint64(bitmap))
	boot.Store(header+hdrBlocks, uint64(blocks))
	boot.Store(header+hdrBlockW, uint64(blockWords))
	boot.Store(header+hdrNBlocks, uint64(nBlocks))
	boot.PWBRange(pmem.NoSite, header, hdrLen)
	boot.PFence()
	root := pool.RootSlot(rootSlot)
	boot.Store(root, uint64(header))
	boot.PWB(pmem.NoSite, root)
	boot.PSync()

	return &Allocator{
		pool: pool, bitmap: bitmap, blocksBase: blocks,
		blockWords: blockWords, nBlocks: nBlocks, header: header,
		s: sites{bit: pool.RegisterSite("rmm/pwb-bitmap")},
	}
}

// Attach reconstructs an Allocator from the header in rootSlot.
func Attach(pool *pmem.Pool, rootSlot int) (*Allocator, error) {
	boot := pool.NewThread(0)
	header := pmem.Addr(boot.Load(pool.RootSlot(rootSlot)))
	if header == pmem.Null {
		return nil, fmt.Errorf("rmm: root slot %d holds no allocator", rootSlot)
	}
	a := &Allocator{
		pool:       pool,
		bitmap:     pmem.Addr(boot.Load(header + hdrBitmap)),
		blocksBase: pmem.Addr(boot.Load(header + hdrBlocks)),
		blockWords: int(boot.Load(header + hdrBlockW)),
		nBlocks:    int(boot.Load(header + hdrNBlocks)),
		header:     header,
		s:          sites{bit: pool.RegisterSite("rmm/pwb-bitmap")},
	}
	if a.bitmap == pmem.Null || a.blockWords <= 0 || a.nBlocks <= 0 {
		return nil, fmt.Errorf("rmm: corrupt header at %#x", uint64(header))
	}
	return a, nil
}

// BlockAddr returns the address of block i.
func (a *Allocator) BlockAddr(i int) pmem.Addr {
	return a.blocksBase + pmem.Addr(i*a.blockWords*pmem.WordSize)
}

// blockIndex is the inverse of BlockAddr.
func (a *Allocator) blockIndex(addr pmem.Addr) (int, error) {
	off := int(addr - a.blocksBase)
	stride := a.blockWords * pmem.WordSize
	if addr < a.blocksBase || off%stride != 0 || off/stride >= a.nBlocks {
		return 0, fmt.Errorf("rmm: %#x is not a block address", uint64(addr))
	}
	return off / stride, nil
}

func (a *Allocator) bitWord(i int) (addr pmem.Addr, mask uint64) {
	return a.bitmap + pmem.Addr(i/64*pmem.WordSize), 1 << uint(i%64)
}

// Handle is the per-thread face of the allocator.
type Handle struct {
	a      *Allocator
	ctx    *pmem.ThreadCtx
	lo, hi int64 // reserved window [lo, hi) in unwrapped cursor space
	// exLo, exHi is the most recent window this handle scanned to
	// exhaustion (every block allocated), in unwrapped cursor space. It is
	// the fairness hint: positions p and p+k*nBlocks name the same block,
	// so after the cursor wraps a fresh window can land back on blocks the
	// handle just proved full; the hint lets Alloc skip that prefix and
	// spend its scan budget on blocks it has not seen this lap.
	exLo, exHi int64
}

// Handle creates the per-thread handle for ctx.
func (a *Allocator) Handle(ctx *pmem.ThreadCtx) *Handle {
	return &Handle{a: a, ctx: ctx}
}

// trimExhausted returns the new lower bound of window [lo, hi) after
// skipping the prefix whose blocks lie in the exhausted window [exLo,
// exHi) taken modulo n. Windows are at most n long, and exHi-exLo < n
// here (a full-lap exhausted window would trim everything and is never
// recorded), so at most two wrapped images of the exhausted window can
// touch the prefix.
func trimExhausted(lo, hi, exLo, exHi, n int64) int64 {
	if exHi <= exLo || lo >= hi {
		return lo
	}
	for {
		k := (lo - exLo) / n
		if k < 1 {
			return lo
		}
		imgLo, imgHi := exLo+k*n, exHi+k*n
		if lo < imgLo || lo >= imgHi {
			return lo
		}
		lo = imgHi
		if lo >= hi {
			return hi
		}
	}
}

// Alloc claims a free block, zeroes it, and returns its address after the
// bitmap bit is durable (so a crash can never hand the block out twice).
// It returns Null when the allocator is exhausted.
//
// The scan is word-at-a-time: one Load covers up to 64 blocks, so a
// near-full allocator costs ~nBlocks/64 loads per lap instead of nBlocks.
// Window positions live in the cursor's unwrapped space (block = position
// mod nBlocks) but each window is clamped to nBlocks positions, so a
// single window never examines a block twice; combined with the
// last-exhausted hint this keeps allocation O(1) amortized when the
// allocator is nearly full. The scan budget is two laps of positions: one
// lap guarantees every block was examined, the second absorbs CAS races
// and concurrent frees (and rescans hint-skipped prefixes), matching the
// old two-round bound.
func (h *Handle) Alloc() pmem.Addr {
	a := h.a
	c := h.ctx
	n := int64(a.nBlocks)
	budget := 2 * n
	var used int64
	for used < budget {
		if h.lo >= h.hi {
			start := a.cursor.Add(chunkBlocks) - chunkBlocks
			h.lo, h.hi = start, start+chunkBlocks
			if h.hi-h.lo > n {
				h.hi = h.lo + n
			}
			if used < n { // hint applies on the first lap only
				trimmed := trimExhausted(h.lo, h.hi, h.exLo, h.exHi, n)
				used += trimmed - h.lo
				h.lo = trimmed
				if h.lo >= h.hi {
					continue
				}
			}
		}
		winLo := h.lo
		for h.lo < h.hi {
			blk := h.lo % n
			bit := blk % 64
			w := a.bitmap + pmem.Addr(blk/64*pmem.WordSize)
			span := 64 - bit
			if rem := h.hi - h.lo; rem < span {
				span = rem
			}
			if tail := n - blk; tail < span {
				span = tail
			}
			mask := ^uint64(0)
			if span < 64 {
				mask = (1<<uint(span) - 1) << uint(bit)
			}
			v := c.Load(w)
			a.scanWords.Add(1)
			free := ^v & mask
			if free == 0 {
				h.lo += span
				used += span
				continue
			}
			fb := int64(bits.TrailingZeros64(free))
			if !c.CAS(w, v, v|1<<uint(fb)) {
				used++ // re-examine the word under its new value
				continue
			}
			h.lo += fb - bit + 1
			c.PWB(a.s.bit, w)
			c.PSync()
			b := a.BlockAddr(int(blk - bit + fb))
			for off := 0; off < a.blockWords; off++ {
				c.Store(b+pmem.Addr(off*pmem.WordSize), 0)
			}
			return b
		}
		// Window exhausted without an allocation: remember it for the
		// wrap-skip hint unless it spans a whole lap (skipping a full lap
		// would skip every block).
		if h.hi-winLo < n {
			h.exLo, h.exHi = winLo, h.hi
		}
	}
	return pmem.Null
}

// Free releases a block. The bit-clear is persisted; if the write-back is
// lost to a crash the block leaks until the next RecoverGC, but is never
// handed out twice.
func (h *Handle) Free(addr pmem.Addr) error {
	a := h.a
	c := h.ctx
	i, err := a.blockIndex(addr)
	if err != nil {
		return err
	}
	w, mask := a.bitWord(i)
	for {
		v := c.Load(w)
		if v&mask == 0 {
			return fmt.Errorf("rmm: double free of block %d", i)
		}
		if c.CAS(w, v, v&^mask) {
			break
		}
	}
	c.PWB(a.s.bit, w)
	c.PSync()
	return nil
}

// InUse counts allocated blocks (diagnostic).
func (a *Allocator) InUse(ctx *pmem.ThreadCtx) int {
	n := 0
	for i := 0; i < a.nBlocks; i++ {
		w, mask := a.bitWord(i)
		if ctx.Load(w)&mask != 0 {
			n++
		}
	}
	return n
}

// RecoverGC rebuilds the allocation bitmap after a crash from the user's
// reachable blocks: mark is called with a visit function and must invoke it
// for the address of every block reachable from the application's roots.
// Blocks whose bits were set but that are unreachable (leaked by the crash)
// are reclaimed; reachable blocks whose bit-set write-back was lost are
// re-marked. Must run before any thread allocates.
func (a *Allocator) RecoverGC(ctx *pmem.ThreadCtx, mark func(visit func(pmem.Addr) error) error) error {
	reachable := make([]uint64, (a.nBlocks+63)/64)
	err := mark(func(addr pmem.Addr) error {
		i, err := a.blockIndex(addr)
		if err != nil {
			return err
		}
		reachable[i/64] |= 1 << uint(i%64)
		return nil
	})
	if err != nil {
		return err
	}
	for wi := range reachable {
		w := a.bitmap + pmem.Addr(wi*pmem.WordSize)
		if ctx.Load(w) != reachable[wi] {
			ctx.Store(w, reachable[wi])
			ctx.PWB(a.s.bit, w)
		}
	}
	ctx.PSync()
	return nil
}

// MarkShard marks one independent shard of the application's reachable
// set: it must invoke visit for the address of every reachable block in
// its shard, using only the thread context it is given. Shards may
// overlap (a block visited twice is simply marked twice) but their union
// must be the full reachable set.
type MarkShard func(ctx *pmem.ThreadCtx, visit func(pmem.Addr) error) error

// ShardAddrs splits an already-enumerated list of reachable block
// addresses into parts mark shards, for callers whose roots are a flat
// list rather than a traversal.
func ShardAddrs(addrs []pmem.Addr, parts int) []MarkShard {
	if parts < 1 {
		parts = 1
	}
	if parts > len(addrs) && len(addrs) > 0 {
		parts = len(addrs)
	}
	if len(addrs) == 0 {
		return nil
	}
	shards := make([]MarkShard, 0, parts)
	per := (len(addrs) + parts - 1) / parts
	for lo := 0; lo < len(addrs); lo += per {
		hi := lo + per
		if hi > len(addrs) {
			hi = len(addrs)
		}
		part := addrs[lo:hi]
		shards = append(shards, func(_ *pmem.ThreadCtx, visit func(pmem.Addr) error) error {
			for _, addr := range part {
				if err := visit(addr); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return shards
}

// RecoverGCParallel is RecoverGC with a concurrent mark phase: the shards
// run on the engine's work-stealing queue (a shard may spawn further work
// through its worker), each worker marking a private volatile bitmap; the
// per-worker bitmaps are then merged with a single OR pass and the
// persistent bitmap is rebuilt in parallel. The result is byte-identical
// to serial RecoverGC from the same reachable set: the mark phase writes
// no persistent state at all, and the rebuild writes exactly the words
// that differ from the merged reachable set. The no-double-allocation
// guarantee is preserved for the same reason as in the serial path —
// recovery is offline, so the full merged mark is durable (each worker
// ends its rebuild with a PSync) before any thread allocates.
func (a *Allocator) RecoverGCParallel(eng *recovery.Engine, shards []MarkShard) error {
	nWords := (a.nBlocks + 63) / 64
	locals := make([][]uint64, eng.Workers())
	tasks := make([]recovery.TaskFunc, len(shards))
	for i, shard := range shards {
		shard := shard
		tasks[i] = func(w *recovery.Worker) error {
			local := locals[w.ID]
			if local == nil {
				local = make([]uint64, nWords)
				locals[w.ID] = local
			}
			return shard(w.Ctx, func(addr pmem.Addr) error {
				i, err := a.blockIndex(addr)
				if err != nil {
					return err
				}
				local[i/64] |= 1 << uint(i%64)
				return nil
			})
		}
	}
	if err := eng.RunTasks(a.pool, recovery.PhaseGCMark, tasks); err != nil {
		return err
	}
	reachable := make([]uint64, nWords)
	for _, local := range locals {
		for wi, v := range local {
			reachable[wi] |= v
		}
	}
	return eng.For(a.pool, recovery.PhaseGCMark, nWords,
		func(ctx *pmem.ThreadCtx, wi int) error {
			w := a.bitmap + pmem.Addr(wi*pmem.WordSize)
			if ctx.Load(w) != reachable[wi] {
				ctx.Store(w, reachable[wi])
				ctx.PWB(a.s.bit, w)
			}
			return nil
		},
		func(ctx *pmem.ThreadCtx) error {
			ctx.PSync()
			return nil
		})
}

// InUseParallel counts allocated blocks with the bitmap words partitioned
// across the engine's workers (diagnostic, word-at-a-time).
func (a *Allocator) InUseParallel(eng *recovery.Engine) (int, error) {
	nWords := (a.nBlocks + 63) / 64
	var total atomic.Int64
	err := eng.For(a.pool, recovery.PhaseVerify, nWords,
		func(ctx *pmem.ThreadCtx, wi int) error {
			v := ctx.Load(a.bitmap + pmem.Addr(wi*pmem.WordSize))
			if rem := a.nBlocks - wi*64; rem < 64 {
				v &= 1<<uint(rem) - 1
			}
			total.Add(int64(bits.OnesCount64(v)))
			return nil
		}, nil)
	if err != nil {
		return 0, err
	}
	return int(total.Load()), nil
}
