package rqueue

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/chaos"
	"repro/internal/pmem"
)

func newQueue(t testing.TB, mode pmem.Mode) (*pmem.Pool, *Queue) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, CapacityWords: 1 << 20, MaxThreads: 16})
	return pool, New(pool, 16, 0)
}

func TestEmptyDequeue(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeStrict)
	h := q.Handle(pool.NewThread(1))
	if v, ok := h.Dequeue(); ok || v != Empty {
		t.Fatalf("empty dequeue = (%d,%v)", v, ok)
	}
	if err := q.CheckInvariants(h.ctx, true); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrder(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeStrict)
	h := q.Handle(pool.NewThread(1))
	for v := uint64(10); v < 20; v++ {
		h.Enqueue(v)
	}
	if got := q.Drain(h.ctx); len(got) != 10 {
		t.Fatalf("Drain = %v", got)
	}
	for want := uint64(10); want < 20; want++ {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want %d", v, ok, want)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("dequeue from drained queue succeeded")
	}
	// Queue must remain usable after emptying.
	h.Enqueue(99)
	if v, ok := h.Dequeue(); !ok || v != 99 {
		t.Fatalf("reuse after drain broken: (%d,%v)", v, ok)
	}
}

func TestSentinelValuePanics(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeStrict)
	h := q.Handle(pool.NewThread(1))
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel value accepted")
		}
	}()
	h.Enqueue(Empty)
}

func TestAttach(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeStrict)
	h := q.Handle(pool.NewThread(1))
	h.Enqueue(7)
	q2, err := Attach(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	h2 := q2.Handle(pool.NewThread(2))
	if v, ok := h2.Dequeue(); !ok || v != 7 {
		t.Fatalf("attached queue dequeue = (%d,%v)", v, ok)
	}
	if _, err := Attach(pool, 3); err == nil {
		t.Fatal("Attach on empty slot succeeded")
	}
}

// TestQuickModelEquivalence compares against a slice model.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []uint8) bool {
		pool, q := newQueue(t, pmem.ModeStrict)
		h := q.Handle(pool.NewThread(1))
		var model []uint64
		next := uint64(100)
		for _, o := range ops {
			if o%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		got := q.Drain(h.ctx)
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return q.CheckInvariants(h.ctx, true) == nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProducerSingleConsumer(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeFast)
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := q.Handle(pool.NewThread(1))
		for v := uint64(0); v < n; v++ {
			h.Enqueue(v)
		}
	}()
	var got []uint64
	go func() {
		defer wg.Done()
		h := q.Handle(pool.NewThread(2))
		for len(got) < n {
			if v, ok := h.Dequeue(); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("FIFO violated at %d: got %d", i, v)
		}
	}
}

func TestConcurrentConservation(t *testing.T) {
	pool, q := newQueue(t, pmem.ModeFast)
	const threads = 4
	const opsPer = 300
	dequeued := make([]map[uint64]int, threads)
	var wg sync.WaitGroup
	for tid := 1; tid <= threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := q.Handle(pool.NewThread(tid))
			rng := rand.New(rand.NewSource(int64(tid) * 13))
			mine := map[uint64]int{}
			dequeued[tid-1] = mine
			for i := 0; i < opsPer; i++ {
				if rng.Intn(2) == 0 {
					h.Enqueue(uint64(tid*1000000 + i))
				} else if v, ok := h.Dequeue(); ok {
					mine[v]++
				}
			}
		}(tid)
	}
	wg.Wait()

	boot := pool.NewThread(0)
	if err := q.CheckInvariants(boot, true); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, m := range dequeued {
		for v, n := range m {
			seen[v] += n
		}
	}
	for _, v := range q.Drain(boot) {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d observed %d times", v, n)
		}
	}
}

// Chaos adapter: Kind 0 = enqueue (Key is the value), Kind 1 = dequeue.

type qThread struct{ h *Handle }

func (qt qThread) Invoke() { qt.h.Invoke() }

func (qt qThread) Run(op chaos.Op) uint64 {
	if op.Kind == 0 {
		qt.h.Enqueue(uint64(op.Key))
		return 1
	}
	v, _ := qt.h.Dequeue()
	return v
}

func (qt qThread) Recover(op chaos.Op) uint64 {
	if op.Kind == 0 {
		qt.h.RecoverEnqueue(uint64(op.Key))
		return 1
	}
	v, _ := qt.h.RecoverDequeue()
	return v
}

func TestChaosQueue(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 21, MaxThreads: 8})
		New(pool, 8, 0)
		res, err := chaos.Run(chaos.Config{
			Pool:         pool,
			Threads:      4,
			OpsPerThread: 30,
			GenOp: func(rng *rand.Rand, tid, i int) chaos.Op {
				if rng.Intn(2) == 0 {
					return chaos.Op{Kind: 0, Key: int64(tid*1000000 + i)} // unique value
				}
				return chaos.Op{Kind: 1}
			},
			Reattach: func(pool *pmem.Pool) (chaos.ThreadFactory, error) {
				q, err := Attach(pool, 0)
				if err != nil {
					return nil, err
				}
				return func(tid int) (chaos.Thread, error) {
					return qThread{h: q.Handle(pool.NewThread(tid))}, nil
				}, nil
			},
			Seed:                       seed,
			MaxCrashes:                 6,
			MeanAccessesBetweenCrashes: 600,
			CommitProb:                 0.5,
			EvictProb:                  0.1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Conservation oracle: every enqueued value is observed exactly
		// once — either dequeued by someone or still in the queue.
		enqueued := map[uint64]bool{}
		seen := map[uint64]int{}
		for _, log := range res.Logs {
			for _, rec := range log {
				if rec.Op.Kind == 0 {
					enqueued[uint64(rec.Op.Key)] = true
				} else if rec.Result != Empty {
					seen[rec.Result]++
				}
			}
		}
		q, err := Attach(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		boot := pool.NewThread(0)
		if err := q.CheckInvariants(boot, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range q.Drain(boot) {
			seen[v]++
		}
		for v, n := range seen {
			if !enqueued[v] {
				t.Fatalf("seed %d: value %d appeared but was never enqueued (crashes %d)", seed, v, res.Crashes)
			}
			if n != 1 {
				t.Fatalf("seed %d: value %d observed %d times (crashes %d)", seed, v, n, res.Crashes)
			}
		}
		for v := range enqueued {
			if seen[v] != 1 {
				t.Fatalf("seed %d: enqueued value %d lost (crashes %d)", seed, v, res.Crashes)
			}
		}
	}
}
