// Package rqueue applies the Tracking approach of Attiya et al. (PPoPP
// 2022) to the Michael-Scott lock-free queue, yielding a detectably
// recoverable FIFO queue. The paper derives a list, a BST and an exchanger;
// recoverable queues are the running example of much of the related work it
// discusses (Friedman et al.'s detectable queue, Sela & Petrank's durable
// queues), which makes the queue a natural fourth instantiation of the
// generic engine — built entirely from Algorithms 1-2's phases, with no
// queue-specific recovery code.
//
//   - Enqueue(v) appends a fresh node after the current last node. Its
//     AffectSet is the last node (tagged, untagged at cleanup), its
//     WriteSet the last node's next field (Null -> new node), its NewSet
//     the new node. The tail pointer is a hint, swung outside the
//     descriptor (it is not part of the linearization, exactly as in the
//     original queue).
//   - Dequeue() advances the head from the current sentinel to its
//     successor, which becomes the new sentinel; the response is the
//     successor's (immutable) value, recorded as the descriptor's pending
//     result. The old sentinel leaves the queue and stays tagged forever.
//     Dequeue on an empty queue takes the read-only path.
package rqueue

import (
	"fmt"

	"repro/internal/pmem"
	"repro/internal/tracking"
)

// Operation type codes.
const (
	OpEnqueue uint64 = 1
	OpDequeue uint64 = 2
)

// Empty is the dequeue response on an empty queue. Enqueued values must be
// smaller than Empty.
const Empty uint64 = 1 << 62

// ack is the (unused) response recorded for a successful enqueue.
const ack uint64 = 1

// Node word offsets: value, next, info.
const (
	offValue = 0
	offNext  = pmem.WordSize
	offInfo  = 2 * pmem.WordSize
	nodeLen  = 3
)

// Header word offsets.
const (
	hdrHeadLine = 0
	hdrTailLine = pmem.WordSize
	hdrTable    = 2 * pmem.WordSize
	hdrThreads  = 3 * pmem.WordSize
	hdrLen      = 4
)

// Queue is a detectably recoverable FIFO queue of uint64 values.
type Queue struct {
	pool     *pmem.Pool
	eng      *tracking.Engine
	headAddr pmem.Addr // word holding the current sentinel's address
	tailAddr pmem.Addr // word holding the tail hint
	header   pmem.Addr
	tailSite pmem.Site
}

// New creates an empty queue for up to maxThreads threads and records its
// header in rootSlot.
func New(pool *pmem.Pool, maxThreads, rootSlot int) *Queue {
	eng := tracking.New(pool, maxThreads, "rqueue")
	boot := pool.NewThread(0)

	sentinel := boot.AllocLocal(nodeLen)
	// head and tail each get their own line: they are the hot words.
	headLine := boot.AllocLines(1)
	tailLine := boot.AllocLines(1)
	boot.Store(headLine, uint64(sentinel))
	boot.Store(tailLine, uint64(sentinel))

	header := boot.AllocLocal(hdrLen)
	boot.Store(header+hdrHeadLine, uint64(headLine))
	boot.Store(header+hdrTailLine, uint64(tailLine))
	boot.Store(header+hdrTable, uint64(eng.TableAddr()))
	boot.Store(header+hdrThreads, uint64(maxThreads))

	boot.PWBRange(pmem.NoSite, sentinel, nodeLen)
	boot.PWB(pmem.NoSite, headLine)
	boot.PWB(pmem.NoSite, tailLine)
	boot.PWBRange(pmem.NoSite, header, hdrLen)
	boot.PFence()
	root := pool.RootSlot(rootSlot)
	boot.Store(root, uint64(header))
	boot.PWB(pmem.NoSite, root)
	boot.PSync()

	return &Queue{
		pool: pool, eng: eng, headAddr: headLine, tailAddr: tailLine,
		header: header, tailSite: pool.RegisterSite("rqueue/pwb-tail-hint"),
	}
}

// Attach reconstructs a Queue from the header in rootSlot.
func Attach(pool *pmem.Pool, rootSlot int) (*Queue, error) {
	boot := pool.NewThread(0)
	header := pmem.Addr(boot.Load(pool.RootSlot(rootSlot)))
	if header == pmem.Null {
		return nil, fmt.Errorf("rqueue: root slot %d holds no queue", rootSlot)
	}
	headLine := pmem.Addr(boot.Load(header + hdrHeadLine))
	tailLine := pmem.Addr(boot.Load(header + hdrTailLine))
	table := pmem.Addr(boot.Load(header + hdrTable))
	threads := int(boot.Load(header + hdrThreads))
	if headLine == pmem.Null || table == pmem.Null || threads <= 0 {
		return nil, fmt.Errorf("rqueue: corrupt header at %#x", uint64(header))
	}
	eng := tracking.Attach(pool, table, threads, "rqueue")
	return &Queue{
		pool: pool, eng: eng, headAddr: headLine, tailAddr: tailLine,
		header: header, tailSite: pool.RegisterSite("rqueue/pwb-tail-hint"),
	}, nil
}

// Handle binds a thread context to the queue; one per simulated thread.
type Handle struct {
	q   *Queue
	th  *tracking.Thread
	ctx *pmem.ThreadCtx
}

// Handle creates the per-thread handle for ctx.
func (q *Queue) Handle(ctx *pmem.ThreadCtx) *Handle {
	return &Handle{q: q, th: q.eng.Thread(ctx), ctx: ctx}
}

// Invoke performs the system-side invocation step; see tracking.Invoke.
func (h *Handle) Invoke() { h.th.Invoke() }

// findLast returns the current last node, advancing the tail hint past
// already-linked successors on the way.
func (h *Handle) findLast() pmem.Addr {
	c := h.ctx
	last := pmem.Addr(c.Load(h.q.tailAddr))
	for {
		next := pmem.Addr(c.Load(last + offNext))
		if next == pmem.Null {
			return last
		}
		// Help the lagging tail hint along (auxiliary, non-linearizing).
		c.CAS(h.q.tailAddr, uint64(last), uint64(next))
		last = next
	}
}

// Enqueue appends value to the queue. value must be < Empty.
func (h *Handle) Enqueue(value uint64) {
	if value >= Empty {
		panic("rqueue: value collides with a sentinel")
	}
	h.th.Invoke()
	c := h.ctx
	nd := c.AllocLocal(nodeLen)
	c.Store(nd+offValue, value)
	h.th.BeginOp()

	for {
		last := h.findLast()
		// First-observer read of a link-and-persist info word (see
		// tracking.Engine.ObservedSite).
		lastInfo := c.LoadAndPersist(h.q.eng.ObservedSite(), last+offInfo)
		if tracking.IsTagged(lastInfo) {
			h.th.Help(tracking.DescOf(lastInfo))
			continue
		}
		if c.Load(last+offNext) != uint64(pmem.Null) {
			continue // a node slipped in; re-find the last node
		}
		affect := []tracking.AffectEntry{{InfoField: last + offInfo, Observed: lastInfo, Untag: true}}
		writes := []tracking.WriteEntry{{Field: last + offNext, Old: uint64(pmem.Null), New: uint64(nd)}}
		news := []pmem.Addr{nd + offInfo}
		desc := h.th.NewDesc(OpEnqueue, ack, affect, writes, news)
		c.Store(nd+offInfo, tracking.Tagged(desc))
		h.th.Publish(desc, tracking.Region{Addr: nd, Words: nodeLen})
		h.th.Help(desc)
		if h.th.Result(desc) != tracking.Bottom {
			// Swing the tail hint to the new node and persist it
			// (recovery tolerates a stale hint; this bounds the walk).
			c.CAS(h.q.tailAddr, uint64(last), uint64(nd))
			c.PWB(h.q.tailSite, h.q.tailAddr)
			return
		}
	}
}

// Dequeue removes and returns the oldest value. ok is false (and the value
// Empty) when the queue is empty.
func (h *Handle) Dequeue() (value uint64, ok bool) {
	h.th.Invoke()
	c := h.ctx
	h.th.BeginOp()

	for {
		sent := pmem.Addr(c.Load(h.q.headAddr))
		sentInfo := c.LoadAndPersist(h.q.eng.ObservedSite(), sent+offInfo)
		if tracking.IsTagged(sentInfo) {
			h.th.Help(tracking.DescOf(sentInfo))
			continue
		}
		first := pmem.Addr(c.Load(sent + offNext))
		if first == pmem.Null {
			// Empty queue: read-only path. The response is decided at
			// the next-field read: next == Null means no node was ever
			// appended after the sentinel, so it is still the head.
			affect := []tracking.AffectEntry{{InfoField: sent + offInfo, Observed: sentInfo, Untag: true}}
			desc := h.th.NewDesc(OpDequeue, Empty, affect, nil, nil)
			h.th.SetEarlyResult(desc, Empty)
			h.th.Publish(desc)
			return Empty, false
		}
		val := c.Load(first + offValue) // immutable once linked
		affect := []tracking.AffectEntry{
			// The sentinel leaves the queue; it stays tagged forever.
			{InfoField: sent + offInfo, Observed: sentInfo, Untag: false},
		}
		writes := []tracking.WriteEntry{{Field: h.q.headAddr, Old: uint64(sent), New: uint64(first)}}
		desc := h.th.NewDesc(OpDequeue, val, affect, writes, nil)
		h.th.Publish(desc)
		h.th.Help(desc)
		if r := h.th.Result(desc); r != tracking.Bottom {
			return r, true
		}
	}
}

// RecoverEnqueue is Enqueue's recovery function.
func (h *Handle) RecoverEnqueue(value uint64) {
	if _, _, ok := h.th.Recover(); ok {
		return
	}
	h.Enqueue(value)
}

// RecoverDequeue is Dequeue's recovery function.
func (h *Handle) RecoverDequeue() (value uint64, ok bool) {
	if _, res, ok2 := h.th.Recover(); ok2 {
		return res, res != Empty
	}
	return h.Dequeue()
}

// Drain returns the values currently in the queue, oldest first
// (diagnostic; not linearizable with concurrent updates).
func (q *Queue) Drain(ctx *pmem.ThreadCtx) []uint64 {
	var out []uint64
	sent := pmem.Addr(ctx.Load(q.headAddr))
	for {
		next := pmem.Addr(ctx.Load(sent + offNext))
		if next == pmem.Null {
			return out
		}
		out = append(out, ctx.Load(next+offValue))
		sent = next
	}
}

// CheckInvariants verifies the queue's structure: the head's chain
// terminates, the tail hint is on the chain starting at the head or behind
// it, and at quiescence no node in the chain is tagged except abandoned
// sentinels before the head.
func (q *Queue) CheckInvariants(ctx *pmem.ThreadCtx, quiescent bool) error {
	maxSteps := q.pool.AllocatedWords()
	sent := pmem.Addr(ctx.Load(q.headAddr))
	steps := 0
	for n := sent; n != pmem.Null; n = pmem.Addr(ctx.Load(n + offNext)) {
		if steps++; steps > maxSteps {
			return fmt.Errorf("rqueue: chain exceeds %d nodes (cycle?)", maxSteps)
		}
		if quiescent && n != sent {
			if info := ctx.Load(n + offInfo); tracking.IsTagged(info) {
				return fmt.Errorf("rqueue: reachable node tagged at quiescence (info %#x)", info)
			}
		}
	}
	return nil
}
