package rexchanger

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/pmem"
)

func newEx(t testing.TB, mode pmem.Mode) (*pmem.Pool, *Exchanger) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, CapacityWords: 1 << 20, MaxThreads: 16})
	return pool, New(pool, 16, 0)
}

func TestTimeoutAlone(t *testing.T) {
	pool, ex := newEx(t, pmem.ModeStrict)
	h := ex.Handle(pool.NewThread(1))
	v, ok := h.Exchange(42, 50)
	if ok || v != TimedOut {
		t.Fatalf("lonely exchange = (%d,%v), want timeout", v, ok)
	}
	// The exchanger must remain usable after a timeout.
	v, ok = h.Exchange(43, 50)
	if ok || v != TimedOut {
		t.Fatalf("second lonely exchange = (%d,%v), want timeout", v, ok)
	}
}

func TestPairExchange(t *testing.T) {
	pool, ex := newEx(t, pmem.ModeFast)
	var wg sync.WaitGroup
	results := make([]uint64, 2)
	oks := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := ex.Handle(pool.NewThread(i + 1))
			results[i], oks[i] = h.Exchange(uint64(100+i), 1<<22)
		}(i)
	}
	wg.Wait()
	if !oks[0] || !oks[1] {
		t.Fatalf("exchange failed: %v %v", oks, results)
	}
	if results[0] != 101 || results[1] != 100 {
		t.Fatalf("values not swapped: %v", results)
	}
}

func TestSentinelValuePanics(t *testing.T) {
	pool, ex := newEx(t, pmem.ModeStrict)
	h := ex.Handle(pool.NewThread(1))
	defer func() {
		if recover() == nil {
			t.Fatal("sentinel value accepted")
		}
	}()
	h.Exchange(TimedOut, 1)
}

func TestAttach(t *testing.T) {
	pool, _ := newEx(t, pmem.ModeStrict)
	ex2, err := Attach(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := ex2.Handle(pool.NewThread(1))
	if v, ok := h.Exchange(7, 10); ok || v != TimedOut {
		t.Fatalf("attached exchanger misbehaves: (%d,%v)", v, ok)
	}
	if _, err := Attach(pool, 3); err == nil {
		t.Fatal("Attach on empty slot succeeded")
	}
}

// failer is the slice of testing.T that checkPairing needs, so tests can
// wrap failures with extra context.
type failer interface {
	Helper()
	Fatalf(format string, args ...interface{})
}

// checkPairing validates exchange semantics over resolved ops: values are
// unique per op; if op a received value v, the op that offered v received
// a's value; timed-out ops' values were received by nobody.
func checkPairing(t failer, offers map[uint64]int, results map[int]uint64, values map[int]uint64) {
	t.Helper()
	received := map[uint64]int{}
	for op, res := range results {
		if res == TimedOut {
			continue
		}
		if n := received[res]; n != 0 {
			t.Fatalf("value %d received more than once", res)
		}
		received[res] = op + 1
		partner, ok := offers[res]
		if !ok {
			t.Fatalf("op %d received value %d that nobody offered", op, res)
		}
		if results[partner] != values[op] {
			t.Fatalf("asymmetric exchange: op %d got %d from op %d, but op %d got %d (want %d)",
				op, res, partner, partner, results[partner], values[op])
		}
	}
	for op, res := range results {
		if res == TimedOut {
			if who, ok := received[values[op]]; ok && who != 0 {
				t.Fatalf("op %d timed out but its value %d was received", op, values[op])
			}
		}
	}
}

func TestManyPairsStress(t *testing.T) {
	pool, ex := newEx(t, pmem.ModeFast)
	const threads = 6
	const opsPer = 60
	var mu sync.Mutex
	offers := map[uint64]int{}
	results := map[int]uint64{}
	values := map[int]uint64{}

	var wg sync.WaitGroup
	for tid := 1; tid <= threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := ex.Handle(pool.NewThread(tid))
			for i := 0; i < opsPer; i++ {
				opID := tid*1000 + i
				v := uint64(opID)
				got, ok := h.Exchange(v, 3000)
				mu.Lock()
				offers[v] = opID
				values[opID] = v
				if ok {
					results[opID] = got
				} else {
					results[opID] = TimedOut
				}
				mu.Unlock()
			}
		}(tid)
	}
	wg.Wait()
	checkPairing(t, offers, results, values)
	// With six threads hammering the exchanger, most ops should pair.
	paired := 0
	for _, r := range results {
		if r != TimedOut {
			paired++
		}
	}
	if paired == 0 {
		t.Fatal("no exchange ever paired under contention")
	}
}

// Chaos adapter: op.Key carries the unique value to offer.

type exThread struct{ h *Handle }

func (et exThread) Invoke() { et.h.Invoke() }

func (et exThread) Run(op chaos.Op) uint64 {
	v, _ := et.h.Exchange(uint64(op.Key), 400)
	return v
}

func (et exThread) Recover(op chaos.Op) uint64 {
	v, _ := et.h.RecoverExchange(uint64(op.Key), 400)
	return v
}

func TestChaosExchanger(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 21, MaxThreads: 8})
		New(pool, 8, 0)
		res, err := chaos.Run(chaos.Config{
			Pool:         pool,
			Threads:      4,
			OpsPerThread: 25,
			GenOp: func(rng *rand.Rand, tid, i int) chaos.Op {
				return chaos.Op{Key: int64(tid*100000 + i)} // unique value
			},
			Reattach: func(pool *pmem.Pool) (chaos.ThreadFactory, error) {
				ex, err := Attach(pool, 0)
				if err != nil {
					return nil, err
				}
				return func(tid int) (chaos.Thread, error) {
					return exThread{h: ex.Handle(pool.NewThread(tid))}, nil
				}, nil
			},
			Seed:                       seed,
			MaxCrashes:                 5,
			MeanAccessesBetweenCrashes: 800,
			CommitProb:                 0.5,
			EvictProb:                  0.1,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		offers := map[uint64]int{}
		results := map[int]uint64{}
		values := map[int]uint64{}
		opID := 0
		for _, log := range res.Logs {
			for _, rec := range log {
				v := uint64(rec.Op.Key)
				offers[v] = opID
				values[opID] = v
				results[opID] = rec.Result
				opID++
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: %v", seed, r)
				}
			}()
			checkPairing(fatalT{t, seed}, offers, results, values)
		}()
	}
}

// fatalT routes checkPairing failures through a panic so the seed can be
// attached to the message.
type fatalT struct {
	*testing.T
	seed int64
}

func (f fatalT) Fatalf(format string, args ...interface{}) {
	panic(fmt.Sprintf("(seed %d) "+format, append([]interface{}{f.seed}, args...)...))
}
