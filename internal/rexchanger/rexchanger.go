// Package rexchanger implements the detectably recoverable exchanger
// sketched in Section 6 of Attiya et al. (PPoPP 2022), derived from the
// elimination exchanger of Scherer, Lea and Scott with the Tracking
// approach.
//
// An exchanger lets two threads pair up and swap values. The object is a
// single persistent pointer, slot, referring to a state node:
//
//   - an EMPTY node means the exchanger is free;
//   - a WAITING node carries the value and descriptor of a thread that
//     captured the exchanger and is waiting for a partner.
//
// A thread p that finds the slot EMPTY installs a fresh WAITING node
// carrying its descriptor and spins. A thread q that finds a WAITING node
// collides: it claims the waiter's descriptor by CASing the descriptor's
// partner field from none to a reference to q's own descriptor — a unique
// value, so after a crash both sides can decide from persistent state
// whether the collision happened and with whom. The partner field is the
// linearization and the commit point of the exchange.
//
// Detectability follows the Tracking recipe: each attempt allocates a
// descriptor tracking the thread's role and progress; the descriptor and
// the thread's recovery data RD are persisted before the critical CAS; and
// a thread never returns a response before the state implying it (the
// partner field) is durable — observers flush it before acting on it, the
// standard flush-before-use rule of durable linearizability.
package rexchanger

import (
	"fmt"
	"runtime"

	"repro/internal/pmem"
)

// Bottom is the "no result yet" sentinel in a descriptor's result field.
const Bottom = ^uint64(0)

// TimedOut is the result recorded when an exchange gives up waiting.
// Exchanged values must be smaller than TimedOut.
const TimedOut = ^uint64(0) - 1

// partner-field states (the field otherwise holds a descriptor address,
// which is always 8-aligned and > 1).
const (
	partnerNone      uint64 = 0
	partnerCancelled uint64 = 1
)

// Node kinds.
const (
	kindEmpty   uint64 = 1
	kindWaiting uint64 = 2
)

// State-node word offsets: kind, value, descriptor.
const (
	ndKind  = 0
	ndValue = pmem.WordSize
	ndDesc  = 2 * pmem.WordSize
	ndLen   = 3
)

// Descriptor word offsets.
const (
	dResult     = 0                 // Bottom | received value | TimedOut
	dValue      = pmem.WordSize     // the value this thread offers
	dTarget     = 2 * pmem.WordSize // collider: the waiter descriptor it claims
	dTargetNode = 3 * pmem.WordSize // collider: the WAITING node; waiter: its own node
	dPartner    = 4 * pmem.WordSize // waiter: none | cancelled | collider descriptor
	dLen        = 5
)

// Header word offsets.
const (
	hdrSlot    = 0
	hdrTable   = pmem.WordSize
	hdrThreads = 2 * pmem.WordSize
	hdrLen     = 3
)

type sites struct {
	cp      pmem.Site
	rd      pmem.Site
	publish pmem.Site
	slot    pmem.Site
	partner pmem.Site
	result  pmem.Site
}

func registerSites(pool *pmem.Pool) sites {
	return sites{
		cp:      pool.RegisterSite("rexch/pwb-CP"),
		rd:      pool.RegisterSite("rexch/pwb-RD"),
		publish: pool.RegisterSite("rexch/pwb-desc+node"),
		slot:    pool.RegisterSite("rexch/pwb-slot"),
		partner: pool.RegisterSite("rexch/pwb-partner"),
		result:  pool.RegisterSite("rexch/pwb-result"),
	}
}

// Exchanger is a detectably recoverable two-party value exchanger.
type Exchanger struct {
	pool   *pmem.Pool
	slot   pmem.Addr // address of the slot word
	table  pmem.Addr // per-thread CP/RD lines
	header pmem.Addr
	s      sites
}

// New creates an exchanger for up to maxThreads threads and records its
// header in rootSlot.
func New(pool *pmem.Pool, maxThreads, rootSlot int) *Exchanger {
	boot := pool.NewThread(0)
	table := boot.AllocLines(maxThreads)
	empty := boot.AllocLocal(ndLen)
	boot.Store(empty+ndKind, kindEmpty)
	// The slot gets its own line: it is the contended word of the object.
	slotLine := boot.AllocLines(1)
	boot.Store(slotLine, uint64(empty))

	header := boot.AllocLocal(hdrLen)
	boot.Store(header+hdrSlot, uint64(slotLine))
	boot.Store(header+hdrTable, uint64(table))
	boot.Store(header+hdrThreads, uint64(maxThreads))

	boot.PWBRange(pmem.NoSite, table, maxThreads*pmem.LineWords)
	boot.PWBRange(pmem.NoSite, empty, ndLen)
	boot.PWB(pmem.NoSite, slotLine)
	boot.PWBRange(pmem.NoSite, header, hdrLen)
	boot.PFence()
	root := pool.RootSlot(rootSlot)
	boot.Store(root, uint64(header))
	boot.PWB(pmem.NoSite, root)
	boot.PSync()

	return &Exchanger{pool: pool, slot: slotLine, table: table, header: header, s: registerSites(pool)}
}

// Attach reconstructs an Exchanger from the header in rootSlot.
func Attach(pool *pmem.Pool, rootSlot int) (*Exchanger, error) {
	boot := pool.NewThread(0)
	header := pmem.Addr(boot.Load(pool.RootSlot(rootSlot)))
	if header == pmem.Null {
		return nil, fmt.Errorf("rexchanger: root slot %d holds no exchanger", rootSlot)
	}
	slot := pmem.Addr(boot.Load(header + hdrSlot))
	table := pmem.Addr(boot.Load(header + hdrTable))
	threads := int(boot.Load(header + hdrThreads))
	if slot == pmem.Null || table == pmem.Null || threads <= 0 {
		return nil, fmt.Errorf("rexchanger: corrupt header at %#x", uint64(header))
	}
	return &Exchanger{pool: pool, slot: slot, table: table, header: header, s: registerSites(pool)}, nil
}

// Handle binds a thread context to the exchanger; one per simulated thread.
type Handle struct {
	ex  *Exchanger
	ctx *pmem.ThreadCtx
	cp  pmem.Addr
	rd  pmem.Addr
}

// Handle creates the per-thread handle for ctx.
func (ex *Exchanger) Handle(ctx *pmem.ThreadCtx) *Handle {
	line := ex.table + pmem.Addr(ctx.TID()*pmem.LineBytes)
	return &Handle{ex: ex, ctx: ctx, cp: line, rd: line + pmem.WordSize}
}

// Invoke performs the system-side failure-atomic invocation step.
func (h *Handle) Invoke() { h.ctx.StoreDurable(h.ex.s.cp, h.cp, 0) }

func (h *Handle) beginOp() {
	c := h.ctx
	c.Store(h.rd, uint64(pmem.Null))
	c.PWB(h.ex.s.rd, h.rd)
	c.PFence()
	c.Store(h.cp, 1)
	c.PWB(h.ex.s.cp, h.cp)
	c.PSync()
}

// newDesc allocates a descriptor for one attempt.
func (h *Handle) newDesc(value uint64) pmem.Addr {
	c := h.ctx
	d := c.AllocLocal(dLen)
	c.Store(d+dResult, Bottom)
	c.Store(d+dValue, value)
	return d
}

// publish persists the descriptor (and the attempt's fresh node, if any)
// and installs it in RD. After publish, the attempt is recoverable.
func (h *Handle) publish(d pmem.Addr, node pmem.Addr) {
	c := h.ctx
	c.PWBRange(h.ex.s.publish, d, dLen)
	if node != pmem.Null {
		c.PWBRange(h.ex.s.publish, node, ndLen)
	}
	c.PFence()
	c.Store(h.rd, uint64(d))
	c.PWB(h.ex.s.rd, h.rd)
	c.PSync()
}

// setResult records and persists the attempt's response.
func (h *Handle) setResult(d pmem.Addr, v uint64) {
	c := h.ctx
	c.CAS(d+dResult, Bottom, v)
	c.PWB(h.ex.s.result, d+dResult)
	c.PSync()
}

// Exchange offers value and waits up to maxSpins slot/partner inspections
// for a partner. It returns the partner's value, or (TimedOut, false) if no
// partner arrived. value must be < TimedOut.
func (h *Handle) Exchange(value uint64, maxSpins int) (uint64, bool) {
	if value >= TimedOut {
		panic("rexchanger: value collides with a sentinel")
	}
	h.Invoke()
	h.beginOp()
	return h.exchange(value, maxSpins)
}

func (h *Handle) exchange(value uint64, maxSpins int) (uint64, bool) {
	c := h.ctx
	ex := h.ex
	spins := 0
	for {
		if spins >= maxSpins {
			return TimedOut, false
		}
		spins++
		nd := pmem.Addr(c.Load(ex.slot))
		switch c.Load(nd + ndKind) {
		case kindEmpty:
			// Capture the exchanger with a fresh WAITING node.
			d := h.newDesc(value)
			wn := c.AllocLocal(ndLen)
			c.Store(wn+ndKind, kindWaiting)
			c.Store(wn+ndValue, value)
			c.Store(wn+ndDesc, uint64(d))
			c.Store(d+dTargetNode, uint64(wn))
			h.publish(d, wn)
			if !c.CAS(ex.slot, uint64(nd), uint64(wn)) {
				continue // somebody beat us; retry with a fresh attempt
			}
			c.PWB(ex.s.slot, ex.slot)
			c.PSync()
			if v, ok := h.await(d, wn, maxSpins-spins); ok {
				return v, v != TimedOut
			}
			// await gave up without resolving; keep trying.
			continue

		case kindWaiting:
			wd := pmem.Addr(c.Load(nd + ndDesc))
			// Collide: claim the waiter's descriptor. Our descriptor
			// records the target first so recovery can decide whether
			// the claim succeeded.
			d := h.newDesc(value)
			c.Store(d+dTarget, uint64(wd))
			c.Store(d+dTargetNode, uint64(nd))
			h.publish(d, pmem.Null)
			claimed := c.CAS(wd+dPartner, partnerNone, uint64(d))
			c.PWB(ex.s.partner, wd+dPartner)
			c.PSync()
			// Help reset the slot whichever way the claim went; the
			// replacement is fresh so slot values never repeat.
			h.resetSlot(nd)
			if claimed {
				got := c.Load(wd + dValue)
				h.setResult(d, got)
				return got, true
			}
			continue

		default:
			panic(fmt.Sprintf("rexchanger: slot node %#x has invalid kind", uint64(nd)))
		}
	}
}

// await spins on the waiter's own descriptor until a collider claims it or
// the spin budget runs out (in which case the waiter cancels). ok == false
// means the attempt was superseded without resolution and must be retried
// (cannot happen in the current protocol, but keeps the contract explicit).
func (h *Handle) await(d, wn pmem.Addr, budget int) (uint64, bool) {
	c := h.ctx
	ex := h.ex
	for i := 0; ; i++ {
		// Busy-waiting yields the processor so a potential partner
		// gets scheduled (essential on few-core hosts).
		runtime.Gosched()
		p := c.Load(d + dPartner)
		switch p {
		case partnerNone:
			if i >= budget {
				// Give up: cancel the capture. The CAS races with
				// a late collider; the winner decides the outcome.
				if c.CAS(d+dPartner, partnerNone, partnerCancelled) {
					c.PWB(ex.s.partner, d+dPartner)
					c.PSync()
					h.resetSlot(wn)
					h.setResult(d, TimedOut)
					return TimedOut, true
				}
				continue // lost the race: a partner arrived after all
			}
		case partnerCancelled:
			h.resetSlot(wn)
			h.setResult(d, TimedOut)
			return TimedOut, true
		default:
			// A collider claimed us. Flush the claim before acting on
			// it (flush-before-use), so the collider's recovery sees
			// the same outcome.
			c.PWB(ex.s.partner, d+dPartner)
			c.PSync()
			got := c.Load(pmem.Addr(p) + dValue)
			h.resetSlot(wn)
			h.setResult(d, got)
			return got, true
		}
	}
}

// resetSlot replaces the WAITING node nd with a fresh EMPTY node if nd is
// still installed. Any thread may perform this cleanup.
func (h *Handle) resetSlot(nd pmem.Addr) {
	c := h.ctx
	if pmem.Addr(c.Load(h.ex.slot)) != nd {
		return
	}
	empty := c.AllocLocal(ndLen)
	c.Store(empty+ndKind, kindEmpty)
	c.PWBRange(h.ex.s.publish, empty, ndLen)
	c.PFence()
	c.CAS(h.ex.slot, uint64(nd), uint64(empty))
	c.PWB(h.ex.s.slot, h.ex.slot)
	c.PSync()
}

// RecoverExchange is Exchange's recovery function: called by the system,
// with the original arguments, when resurrecting a thread that crashed
// inside Exchange. It determines from persistent state whether the exchange
// took effect, resumes waiting if the thread still holds the exchanger, or
// re-invokes the operation.
func (h *Handle) RecoverExchange(value uint64, maxSpins int) (uint64, bool) {
	c := h.ctx
	if c.Load(h.cp) == 0 {
		return h.Exchange(value, maxSpins)
	}
	d := pmem.Addr(c.Load(h.rd))
	if d == pmem.Null {
		return h.Exchange(value, maxSpins)
	}
	if r := c.Load(d + dResult); r != Bottom {
		return r, r != TimedOut
	}
	if target := pmem.Addr(c.Load(d + dTarget)); target != pmem.Null {
		// Collider role: the claim CAS is the commit point; its unique
		// value tells us whether we won.
		if c.Load(target+dPartner) == uint64(d) {
			c.PWB(h.ex.s.partner, target+dPartner)
			c.PSync()
			h.resetSlot(pmem.Addr(c.Load(d + dTargetNode)))
			got := c.Load(target + dValue)
			h.setResult(d, got)
			return got, true
		}
		// The claim did not take effect (or was lost with the waiter's
		// un-persisted state): the attempt had no visible effect.
		return h.exchange(value, maxSpins)
	}
	// Waiter role.
	wn := pmem.Addr(c.Load(d + dTargetNode))
	switch p := c.Load(d + dPartner); p {
	case partnerNone:
		if pmem.Addr(c.Load(h.ex.slot)) == wn {
			// Still captured: resume waiting.
			if v, ok := h.await(d, wn, maxSpins); ok {
				return v, v != TimedOut
			}
			return h.exchange(value, maxSpins)
		}
		// Never durably installed: the attempt had no visible effect.
		return h.exchange(value, maxSpins)
	case partnerCancelled:
		h.resetSlot(wn)
		h.setResult(d, TimedOut)
		return TimedOut, false
	default:
		c.PWB(h.ex.s.partner, d+dPartner)
		c.PSync()
		got := c.Load(pmem.Addr(p) + dValue)
		h.resetSlot(wn)
		h.setResult(d, got)
		return got, true
	}
}
