package redolog

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

func newSet(t testing.TB, mode pmem.Mode) (*pmem.Pool, *Set) {
	t.Helper()
	pool := pmem.New(pmem.Config{Mode: mode, CapacityWords: 1 << 20, MaxThreads: 16})
	return pool, New(pool, 1<<14, 16, 0)
}

func TestBasicOps(t *testing.T) {
	pool, s := newSet(t, pmem.ModeStrict)
	h := s.Handle(pool.NewThread(1))
	if !h.Insert(5) || h.Insert(5) {
		t.Fatal("insert semantics broken")
	}
	if !h.Find(5) || h.Find(6) {
		t.Fatal("find semantics broken")
	}
	if !h.Delete(5) || h.Delete(5) {
		t.Fatal("delete semantics broken")
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		pool, s := newSet(t, pmem.ModeStrict)
		h := s.Handle(pool.NewThread(1))
		model := map[int64]bool{}
		for _, o := range ops {
			key := int64(o%40) + 1
			switch o % 3 {
			case 0:
				if h.Insert(key) != !model[key] {
					return false
				}
				model[key] = true
			case 1:
				if h.Delete(key) != model[key] {
					return false
				}
				delete(model, key)
			default:
				if h.Find(key) != model[key] {
					return false
				}
			}
		}
		return s.Size() == len(model)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrent(t *testing.T) {
	pool, s := newSet(t, pmem.ModeFast)
	const threads = 4
	var wg sync.WaitGroup
	for tid := 1; tid <= threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := s.Handle(pool.NewThread(tid))
			base := int64(tid * 1000)
			for i := int64(0); i < 80; i++ {
				if !h.Insert(base + i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	if got := s.Size(); got != threads*80 {
		t.Fatalf("Size = %d, want %d", got, threads*80)
	}
}

// TestCrashRecovery sweeps crash points over a small script and checks
// detectable exactly-once semantics against a model.
func TestCrashRecovery(t *testing.T) {
	script := []struct {
		op  uint64
		key int64
	}{
		{OpInsert, 5}, {OpInsert, 9}, {OpDelete, 5}, {OpInsert, 5},
		{OpFind, 9}, {OpDelete, 9}, {OpDelete, 9},
	}
	for crashAt := int64(1); ; crashAt++ {
		if crashAt > 20000 {
			t.Fatal("script never completed crash-free")
		}
		pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 18, MaxThreads: 4})
		s := New(pool, 1<<10, 4, 0)
		model := map[int64]bool{}
		apply := func(op uint64, key int64) bool {
			switch op {
			case OpInsert:
				if model[key] {
					return false
				}
				model[key] = true
				return true
			case OpDelete:
				if !model[key] {
					return false
				}
				delete(model, key)
				return true
			default:
				return model[key]
			}
		}
		crashed := false
		idx, invoked := -1, false

		pool.SetCrashAfter(crashAt)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			h := s.Handle(pool.NewThread(1))
			for i, op := range script {
				idx, invoked = i, false
				seq := h.Invoke()
				invoked = true
				got := h.run(seq, op.op, op.key) == 1
				if got != apply(op.op, op.key) {
					t.Fatalf("crashAt=%d op %d mismatch", crashAt, i)
				}
			}
		}()
		pool.SetCrashAfter(0)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashPolicy{Rng: rand.New(rand.NewSource(crashAt)), CommitProb: 0.5, EvictProb: 0.1})
		pool.Recover()
		s2, err := Attach(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		h2 := s2.Handle(pool.NewThread(1))
		op := script[idx]
		var got bool
		if invoked {
			got = h2.Recover(op.op, op.key)
		} else {
			got = h2.runOp(op.op, op.key)
		}
		if got != apply(op.op, op.key) {
			t.Fatalf("crashAt=%d recovered op %d: got %v", crashAt, idx, got)
		}
		for i := idx + 1; i < len(script); i++ {
			op := script[i]
			if h2.runOp(op.op, op.key) != apply(op.op, op.key) {
				t.Fatalf("crashAt=%d post-recovery op %d mismatch", crashAt, i)
			}
		}
		if s2.Size() != len(model) {
			t.Fatalf("crashAt=%d: size %d vs model %d", crashAt, s2.Size(), len(model))
		}
	}
}

func TestAttachEmptySlot(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 12, MaxThreads: 2})
	if _, err := Attach(pool, 3); err == nil {
		t.Fatal("Attach on empty slot succeeded")
	}
}

// TestCheckpointAndRingReuse forces the ring to lap many times with a tiny
// capacity, so checkpoints must cover and truncate the log repeatedly.
func TestCheckpointAndRingReuse(t *testing.T) {
	pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 16, MaxThreads: 4})
	s := New(pool, 16, 4, 0) // 16-entry ring
	h := s.Handle(pool.NewThread(1))
	model := map[int64]bool{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		key := rng.Int63n(10) + 1
		if rng.Intn(2) == 0 {
			want := !model[key]
			model[key] = true
			if h.Insert(key) != want {
				t.Fatalf("op %d: insert mismatch", i)
			}
		} else {
			want := model[key]
			delete(model, key)
			if h.Delete(key) != want {
				t.Fatalf("op %d: delete mismatch", i)
			}
		}
	}
	if s.Size() != len(model) {
		t.Fatalf("size %d vs model %d", s.Size(), len(model))
	}
	// Crash and recover: the replica must be rebuilt from the latest
	// checkpoint plus the suffix.
	pool.TriggerCrash()
	pool.Crash(pmem.CrashPolicy{})
	pool.Recover()
	s2, err := Attach(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() != len(model) {
		t.Fatalf("recovered size %d vs model %d", s2.Size(), len(model))
	}
	boot := pool.NewThread(0)
	for _, k := range s2.Keys(boot) {
		if !model[k] {
			t.Fatalf("recovered ghost key %d", k)
		}
	}
}

// TestCrashRecoveryWithCheckpoints repeats the crash sweep with a tiny ring
// so recovery exercises the checkpoint-load path.
func TestCrashRecoveryWithCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is slow under -race/-short")
	}
	script := []struct {
		op  uint64
		key int64
	}{
		{OpInsert, 1}, {OpInsert, 2}, {OpInsert, 3}, {OpDelete, 2},
		{OpInsert, 4}, {OpInsert, 5}, {OpDelete, 1}, {OpInsert, 6},
		{OpInsert, 7}, {OpDelete, 5}, {OpInsert, 8}, {OpFind, 3},
	}
	for crashAt := int64(1); ; crashAt++ {
		if crashAt > 30000 {
			t.Fatal("script never completed crash-free")
		}
		pool := pmem.New(pmem.Config{Mode: pmem.ModeStrict, CapacityWords: 1 << 16, MaxThreads: 4})
		s := New(pool, 8, 4, 0) // 8-entry ring: checkpoints fire mid-script
		model := map[int64]bool{}
		apply := func(op uint64, key int64) bool {
			switch op {
			case OpInsert:
				if model[key] {
					return false
				}
				model[key] = true
				return true
			case OpDelete:
				if !model[key] {
					return false
				}
				delete(model, key)
				return true
			default:
				return model[key]
			}
		}
		crashed := false
		idx, invoked := -1, false
		pool.SetCrashAfter(crashAt)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != pmem.ErrCrashed {
						panic(r)
					}
					crashed = true
				}
			}()
			h := s.Handle(pool.NewThread(1))
			for i, op := range script {
				idx, invoked = i, false
				seq := h.Invoke()
				invoked = true
				got := h.run(seq, op.op, op.key) == 1
				if got != apply(op.op, op.key) {
					t.Fatalf("crashAt=%d op %d mismatch", crashAt, i)
				}
			}
		}()
		pool.SetCrashAfter(0)
		if !crashed {
			break
		}
		pool.Crash(pmem.CrashPolicy{Rng: rand.New(rand.NewSource(crashAt)), CommitProb: 0.5, EvictProb: 0.1})
		pool.Recover()
		s2, err := Attach(pool, 0)
		if err != nil {
			t.Fatal(err)
		}
		h2 := s2.Handle(pool.NewThread(1))
		op := script[idx]
		var got bool
		if invoked {
			got = h2.Recover(op.op, op.key)
		} else {
			got = h2.runOp(op.op, op.key)
		}
		if got != apply(op.op, op.key) {
			t.Fatalf("crashAt=%d recovered op %d: got %v", crashAt, idx, got)
		}
		for i := idx + 1; i < len(script); i++ {
			op := script[i]
			if h2.runOp(op.op, op.key) != apply(op.op, op.key) {
				t.Fatalf("crashAt=%d post-recovery op %d mismatch", crashAt, i)
			}
		}
		if s2.Size() != len(model) {
			t.Fatalf("crashAt=%d: size %d vs model %d", crashAt, s2.Size(), len(model))
		}
	}
}
