// Package redolog implements a compact stand-in for the Redo family of
// persistent universal constructions (Correia, Felber, Ramalhete, EuroSys
// 2020 — RedoOpt being the best performer), which the paper compares
// against in Section 5, instantiated for a sorted-set object.
//
// The construction is a persistent redo log of operations. A thread
// announces its operation in a per-thread persistent slot, then combines:
// under a combiner lock it appends every announced-but-unapplied operation
// to the log — computing each response deterministically against a volatile
// replica of the set — persists the entries, and finally bumps the
// persistent log tail. The log is the single source of truth: recovery
// replays it from the beginning to rebuild the replica, and each thread's
// last response is recomputed during replay, which makes the construction
// detectable.
//
// The log is a ring, bounded by periodic checkpoints: the combiner
// serializes the replica and the per-thread response table into one of two
// alternating persistent buffers and atomically publishes it with a single
// word naming the buffer and the log prefix it covers. Recovery loads the
// latest checkpoint and replays only the suffix. One simplification remains
// relative to the published system, preserving the behaviour the evaluation
// exercises (a centralized persisted log whose sequential append dominates
// scaling): the combiner is a mutex rather than wait-free helping.
package redolog

import (
	"fmt"
	"sync"

	"repro/internal/pmem"
)

// Operation codes.
const (
	OpInsert uint64 = 1
	OpDelete uint64 = 2
	OpFind   uint64 = 3
)

// Log entry word offsets: header packs (tid<<32 | op<<1 | result), key.
const (
	entHeader = 0
	entKey    = pmem.WordSize
	entSeq    = 2 * pmem.WordSize
	entLen    = 3
)

// Announce slot word offsets (one line per thread): seq, op, key.
const (
	annSeq = 0
	annOp  = pmem.WordSize
	annKey = 2 * pmem.WordSize
)

// Header word offsets.
const (
	hdrLog     = 0
	hdrTail    = pmem.WordSize
	hdrAnn     = 2 * pmem.WordSize
	hdrInvoke  = 3 * pmem.WordSize
	hdrCap     = 4 * pmem.WordSize
	hdrThreads = 5 * pmem.WordSize
	hdrCkpt    = 6 * pmem.WordSize // checkpoint switch word address
	hdrBufA    = 7 * pmem.WordSize
	hdrBufB    = 8 * pmem.WordSize
	hdrLen     = 9
)

// The checkpoint switch word packs (buffer index << 62) | covered tail.
const ckptBufBit = 62

// Checkpoint buffer layout: word 0 = number of keys, words 1.. = keys,
// then 2 words (seq, result) per thread.
func ckptBufWords(capacity, maxThreads int) int { return 1 + capacity + 2*maxThreads }

type sites struct {
	announce pmem.Site
	entry    pmem.Site
	tail     pmem.Site
	seq      pmem.Site
	ckpt     pmem.Site
}

func registerSites(pool *pmem.Pool) sites {
	return sites{
		announce: pool.RegisterSite("redo/pwb-announce"),
		entry:    pool.RegisterSite("redo/pwb-log-entry"),
		tail:     pool.RegisterSite("redo/pwb-tail"),
		seq:      pool.RegisterSite("redo/pwb-invokeseq"),
		ckpt:     pool.RegisterSite("redo/pwb-checkpoint"),
	}
}

// Set is a persistent, detectable sorted-set built on a redo log.
type Set struct {
	pool       *pmem.Pool
	logBase    pmem.Addr
	tailAddr   pmem.Addr
	annBase    pmem.Addr
	invokeBase pmem.Addr
	capacity   int // max entries
	maxThreads int
	s          sites

	ckptAddr   pmem.Addr // checkpoint switch word
	bufA, bufB pmem.Addr // alternating checkpoint buffers

	mu      sync.Mutex // combiner lock
	replica *seqList   // volatile replica of the sequential object
	applied []uint64   // volatile: per-thread last applied announce seq
	results []uint64   // volatile: per-thread last result (rebuilt on attach)
	lastSeq []uint64   // volatile: per-thread seq of results entry
	covered uint64     // volatile mirror of the checkpointed log prefix
}

// New creates a Set with room for capacity log entries and records its
// header in rootSlot.
func New(pool *pmem.Pool, capacity, maxThreads, rootSlot int) *Set {
	boot := pool.NewThread(0)
	logBase := boot.AllocLines((capacity*entLen + pmem.LineWords - 1) / pmem.LineWords)
	tailLine := boot.AllocLines(1)
	annBase := boot.AllocLines(maxThreads)
	invokeBase := boot.AllocLines(maxThreads)
	ckptLine := boot.AllocLines(1)
	bw := ckptBufWords(capacity, maxThreads)
	bufA := boot.AllocLines((bw + pmem.LineWords - 1) / pmem.LineWords)
	bufB := boot.AllocLines((bw + pmem.LineWords - 1) / pmem.LineWords)

	header := boot.AllocLocal(hdrLen)
	boot.Store(header+hdrLog, uint64(logBase))
	boot.Store(header+hdrTail, uint64(tailLine))
	boot.Store(header+hdrAnn, uint64(annBase))
	boot.Store(header+hdrInvoke, uint64(invokeBase))
	boot.Store(header+hdrCap, uint64(capacity))
	boot.Store(header+hdrThreads, uint64(maxThreads))
	boot.Store(header+hdrCkpt, uint64(ckptLine))
	boot.Store(header+hdrBufA, uint64(bufA))
	boot.Store(header+hdrBufB, uint64(bufB))
	boot.PWBRange(pmem.NoSite, header, hdrLen)
	boot.PFence()
	root := pool.RootSlot(rootSlot)
	boot.Store(root, uint64(header))
	boot.PWB(pmem.NoSite, root)
	boot.PSync()

	return &Set{
		pool: pool, logBase: logBase, tailAddr: tailLine, annBase: annBase,
		invokeBase: invokeBase, capacity: capacity, maxThreads: maxThreads,
		ckptAddr: ckptLine, bufA: bufA, bufB: bufB,
		s:       registerSites(pool),
		replica: newSeqList(),
		applied: make([]uint64, maxThreads),
		results: make([]uint64, maxThreads),
		lastSeq: make([]uint64, maxThreads),
	}
}

// Attach reconstructs a Set from rootSlot and replays the log to rebuild
// the volatile replica and per-thread responses.
func Attach(pool *pmem.Pool, rootSlot int) (*Set, error) {
	boot := pool.NewThread(0)
	header := pmem.Addr(boot.Load(pool.RootSlot(rootSlot)))
	if header == pmem.Null {
		return nil, fmt.Errorf("redolog: root slot %d holds no set", rootSlot)
	}
	s := &Set{
		pool:       pool,
		logBase:    pmem.Addr(boot.Load(header + hdrLog)),
		tailAddr:   pmem.Addr(boot.Load(header + hdrTail)),
		annBase:    pmem.Addr(boot.Load(header + hdrAnn)),
		invokeBase: pmem.Addr(boot.Load(header + hdrInvoke)),
		capacity:   int(boot.Load(header + hdrCap)),
		maxThreads: int(boot.Load(header + hdrThreads)),
		s:          registerSites(pool),
		replica:    newSeqList(),
	}
	if s.logBase == pmem.Null || s.capacity <= 0 || s.maxThreads <= 0 {
		return nil, fmt.Errorf("redolog: corrupt header at %#x", uint64(header))
	}
	s.ckptAddr = pmem.Addr(boot.Load(header + hdrCkpt))
	s.bufA = pmem.Addr(boot.Load(header + hdrBufA))
	s.bufB = pmem.Addr(boot.Load(header + hdrBufB))
	s.applied = make([]uint64, s.maxThreads)
	s.results = make([]uint64, s.maxThreads)
	s.lastSeq = make([]uint64, s.maxThreads)

	// Load the latest checkpoint, if any, then replay the suffix: every
	// entry below the durable tail is fully persisted.
	sw := boot.Load(s.ckptAddr)
	covered := sw &^ (uint64(3) << ckptBufBit)
	if sw != 0 {
		buf := s.bufA
		if sw>>ckptBufBit&1 == 1 {
			buf = s.bufB
		}
		nKeys := boot.Load(buf)
		for i := uint64(0); i < nKeys; i++ {
			s.replica.insert(int64(boot.Load(buf + pmem.Addr((1+i)*pmem.WordSize))))
		}
		per := buf + pmem.Addr((1+uint64(s.capacity))*pmem.WordSize)
		for t := 0; t < s.maxThreads; t++ {
			seq := boot.Load(per + pmem.Addr(2*t*pmem.WordSize))
			res := boot.Load(per + pmem.Addr((2*t+1)*pmem.WordSize))
			s.applied[t], s.lastSeq[t], s.results[t] = seq, seq, res
		}
	}
	s.covered = covered
	tail := boot.Load(s.tailAddr)
	for i := covered; i < tail; i++ {
		s.replayEntry(boot, int(i))
	}
	return s, nil
}

// checkpoint serializes the replica and response table into the inactive
// buffer and atomically publishes it. Caller holds the combiner lock.
func (s *Set) checkpoint(c *pmem.ThreadCtx, tail uint64) {
	// With batching opted in, one write-combining epoch per checkpoint:
	// the serialized replica and per-thread table are flushed range-wise,
	// and the buffer-switch publish supplies the single group sync. Called
	// from inside run()'s combine epoch this simply joins it (batches
	// nest).
	if bp := s.pool.BatchPolicy(); bp.Active() {
		c.BeginBatch(bp)
		defer c.EndBatch()
	}
	old := c.Load(s.ckptAddr)
	bufIdx := uint64(0)
	buf := s.bufA
	if old != 0 && old>>ckptBufBit&1 == 0 {
		bufIdx, buf = 1, s.bufB
	}
	keys := s.replica.keys()
	c.Store(buf, uint64(len(keys)))
	for i, k := range keys {
		c.Store(buf+pmem.Addr((1+i)*pmem.WordSize), uint64(k))
	}
	per := buf + pmem.Addr((1+s.capacity)*pmem.WordSize)
	for t := 0; t < s.maxThreads; t++ {
		c.Store(per+pmem.Addr(2*t*pmem.WordSize), s.lastSeq[t])
		c.Store(per+pmem.Addr((2*t+1)*pmem.WordSize), s.results[t])
	}
	c.PWBRange(s.s.ckpt, buf, 1+len(keys))
	c.PWBRange(s.s.ckpt, per, 2*s.maxThreads)
	c.PFence()
	c.Store(s.ckptAddr, bufIdx<<ckptBufBit|tail)
	c.PWB(s.s.ckpt, s.ckptAddr)
	c.PSync()
	s.covered = tail
}

// entryAddr maps a logical log index to its ring slot.
func (s *Set) entryAddr(i int) pmem.Addr {
	return s.logBase + pmem.Addr((i%s.capacity)*entLen*pmem.WordSize)
}

// replayEntry applies log entry i to the replica and records the issuing
// thread's response.
func (s *Set) replayEntry(ctx *pmem.ThreadCtx, i int) {
	e := s.entryAddr(i)
	hdr := ctx.Load(e + entHeader)
	key := int64(ctx.Load(e + entKey))
	seq := ctx.Load(e + entSeq)
	tid := int(hdr >> 32)
	op := hdr >> 1 & 0x7fffffff
	res := s.apply(op, key)
	if tid >= 0 && tid < s.maxThreads {
		s.applied[tid] = seq
		s.lastSeq[tid] = seq
		s.results[tid] = res
	}
}

// apply mutates the replica deterministically and returns the response.
func (s *Set) apply(op uint64, key int64) uint64 {
	switch op {
	case OpInsert:
		return b2u(s.replica.insert(key))
	case OpDelete:
		return b2u(s.replica.delete(key))
	default:
		return b2u(s.replica.find(key))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Handle binds a thread context to the set.
type Handle struct {
	set *Set
	ctx *pmem.ThreadCtx
}

// Handle creates the per-thread handle for ctx.
func (s *Set) Handle(ctx *pmem.ThreadCtx) *Handle {
	return &Handle{set: s, ctx: ctx}
}

// Invoke performs the system-side invocation step and returns the new
// operation sequence number.
func (h *Handle) Invoke() uint64 {
	line := h.set.invokeBase + pmem.Addr(h.ctx.TID()*pmem.LineBytes)
	seq := h.ctx.Load(line) + 1
	h.ctx.StoreDurable(h.set.s.seq, line, seq)
	return seq
}

// run announces (seq, op, key) and combines until the operation is applied.
func (h *Handle) run(seq, op uint64, key int64) uint64 {
	s := h.set
	c := h.ctx
	tid := c.TID()
	ann := s.annBase + pmem.Addr(tid*pmem.LineBytes)
	// The sequence word is stored last: a combiner that observes the new
	// seq is guaranteed to see the matching op and key.
	c.Store(ann+annOp, op)
	c.Store(ann+annKey, uint64(key))
	c.Store(ann+annSeq, seq)
	c.PWBRange(s.s.announce, ann, 3)
	c.PSync()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.applied[tid] >= seq {
		return s.results[tid] // someone combined for us (not in the
		// mutex variant, but kept for protocol clarity)
	}
	// Combine: append every announced-but-unapplied operation. When the
	// pool has opted into batching, the whole append phase runs as one
	// write-combining epoch: consecutive log entries (entLen words each)
	// share cache lines, so in the fast-mode cost model the per-entry
	// flushes merge and the tail publish's sync becomes the group sync of
	// the epoch. Strict-mode durability is unaffected (batching never
	// defers strict captures or commits); with no policy installed the
	// combiner's cost profile is exactly the unbatched one.
	if bp := s.pool.BatchPolicy(); bp.Active() {
		c.BeginBatch(bp)
		defer c.EndBatch()
	}
	tail := int(c.Load(s.tailAddr))
	appended := 0
	for t := 0; t < s.maxThreads; t++ {
		a := s.annBase + pmem.Addr(t*pmem.LineBytes)
		aseq := c.Load(a + annSeq)
		if aseq == 0 || aseq <= s.applied[t] {
			continue
		}
		if uint64(tail+appended)-s.covered >= uint64(s.capacity) {
			// The ring is about to lap an uncheckpointed entry:
			// checkpoint the prefix written so far first.
			c.Store(s.tailAddr, uint64(tail+appended))
			c.PWB(s.s.tail, s.tailAddr)
			c.PSync()
			s.checkpoint(c, uint64(tail+appended))
		}
		e := s.entryAddr(tail + appended)
		aop := c.Load(a + annOp)
		akey := int64(c.Load(a + annKey))
		res := s.apply(aop, akey)
		c.Store(e+entHeader, uint64(t)<<32|aop<<1|res)
		c.Store(e+entKey, uint64(akey))
		c.Store(e+entSeq, aseq)
		c.PWBRange(s.s.entry, e, entLen)
		s.applied[t] = aseq
		s.lastSeq[t] = aseq
		s.results[t] = res
		appended++
	}
	c.PFence()
	c.Store(s.tailAddr, uint64(tail+appended))
	c.PWB(s.s.tail, s.tailAddr)
	c.PSync()
	// Opportunistic checkpoint once the uncovered suffix fills half the
	// ring, keeping recovery replay short and the ring far from lapping.
	if uint64(tail+appended)-s.covered >= uint64(s.capacity)/2 {
		s.checkpoint(c, uint64(tail+appended))
	}
	return s.results[tid]
}

// Insert adds key and reports whether it was absent.
func (h *Handle) Insert(key int64) bool {
	seq := h.Invoke()
	return h.run(seq, OpInsert, key) == 1
}

// Delete removes key and reports whether it was present.
func (h *Handle) Delete(key int64) bool {
	seq := h.Invoke()
	return h.run(seq, OpDelete, key) == 1
}

// Find reports membership (also logged: the construction treats every
// operation uniformly, which is part of its cost).
func (h *Handle) Find(key int64) bool {
	seq := h.Invoke()
	return h.run(seq, OpFind, key) == 1
}

// Recover resolves the thread's last invoked operation after a crash: if
// the log already contains it, its replayed response is returned; otherwise
// the operation had no effect and is re-run.
func (h *Handle) Recover(op uint64, key int64) bool {
	s := h.set
	c := h.ctx
	tid := c.TID()
	seq := c.Load(s.invokeBase + pmem.Addr(tid*pmem.LineBytes))
	if seq == 0 {
		return h.runOp(op, key)
	}
	s.mu.Lock()
	done := s.lastSeq[tid] == seq
	res := s.results[tid]
	s.mu.Unlock()
	if done {
		return res == 1
	}
	// Not in the log: the announcement (if any) was never combined.
	// Clear it and re-run under the same sequence number.
	return h.run(seq, op, key) == 1
}

func (h *Handle) runOp(op uint64, key int64) bool {
	switch op {
	case OpInsert:
		return h.Insert(key)
	case OpDelete:
		return h.Delete(key)
	default:
		return h.Find(key)
	}
}

// Keys returns the current keys in order (diagnostic, combiner-locked).
func (s *Set) Keys(ctx *pmem.ThreadCtx) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica.keys()
}

// Size reports the current cardinality.
func (s *Set) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica.size()
}

// seqList is the volatile replica: the same sequential sorted linked list
// the other implementations provide, so replayed operations pay the same
// traversal cost the published system's replica does.
type seqList struct {
	head *seqNode
	n    int
}

type seqNode struct {
	key  int64
	next *seqNode
}

func newSeqList() *seqList {
	return &seqList{head: &seqNode{key: 0, next: nil}}
}

func (l *seqList) window(key int64) (pred, curr *seqNode) {
	pred = l.head
	curr = pred.next
	for curr != nil && curr.key < key {
		pred = curr
		curr = curr.next
	}
	return pred, curr
}

func (l *seqList) insert(key int64) bool {
	pred, curr := l.window(key)
	if curr != nil && curr.key == key {
		return false
	}
	pred.next = &seqNode{key: key, next: curr}
	l.n++
	return true
}

func (l *seqList) delete(key int64) bool {
	pred, curr := l.window(key)
	if curr == nil || curr.key != key {
		return false
	}
	pred.next = curr.next
	l.n--
	return true
}

func (l *seqList) find(key int64) bool {
	_, curr := l.window(key)
	return curr != nil && curr.key == key
}

func (l *seqList) keys() []int64 {
	out := make([]int64, 0, l.n)
	for c := l.head.next; c != nil; c = c.next {
		out = append(out, c.key)
	}
	return out
}

func (l *seqList) size() int { return l.n }
